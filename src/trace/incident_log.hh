/**
 * @file
 * Incident spans: per-fault detect/eject/recover timelines for MTTR.
 *
 * The fleet orchestrator opens one incident per injected fault
 * (crash, degrade, flap, partition, balancer loss); the detection
 * layer stamps the first moments it *noticed* (detect), *acted*
 * (eject), and *restored service* (recover) for the afflicted target.
 * The chaos harness reduces the spans to the paper-style operational
 * metrics: mean/percentile time-to-detect, detect-to-eject MTTR, and
 * inject-to-recover.
 *
 * All timestamps are simulation ticks from the shared EventQueue, so
 * MTTR numbers are as deterministic as everything else; the log folds
 * into run fingerprints via hash().
 */

#ifndef FSIM_TRACE_INCIDENT_LOG_HH
#define FSIM_TRACE_INCIDENT_LOG_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace fsim
{

/** What kind of fault opened the incident. */
enum class IncidentKind : std::uint8_t
{
    kMachineCrash = 0,
    kMachineDegrade,
    kMachineFlap,       //!< oscillating degrade
    kNetPartition,
    kLbCrash,
    kSloBurn,           //!< error-budget burn-rate alert (SLO layer)
};

const char *incidentKindName(IncidentKind kind);

/** One fault's lifecycle timeline. */
struct Incident
{
    IncidentKind kind = IncidentKind::kMachineCrash;
    /** Afflicted server-machine slot; -1 = not tied to one machine
     *  (a multi-group partition, a balancer loss). */
    int target = -1;
    Tick injectAt = 0;          //!< fault armed on the live topology
    Tick clearAt = 0;           //!< fault removed (window closed)
    Tick detectAt = 0;          //!< first suspicion (probe fail/outlier)
    Tick ejectAt = 0;           //!< target removed from steering
    Tick recoverAt = 0;         //!< target readmitted to steering
    bool cleared = false;
    bool detected = false;
    bool ejected = false;
    bool recovered = false;
};

/** Append-only incident record with first-moment stamping. */
class IncidentLog
{
  public:
    /** Open an incident; returns its id. */
    int open(IncidentKind kind, int target, Tick injectAt);

    /** The fault itself was removed (window end / heal). */
    void noteCleared(int id, Tick t);

    /** @name Detection-side stamps (first occurrence only)
     *  Balancers don't hold incident ids, so stamps route by target:
     *  the newest incident open for @p target (injectAt <= t) that has
     *  not yet been stamped takes it. Multiple balancers stamping the
     *  same incident keep the earliest tick (first call wins).
     */
    /** @{ */
    void noteDetect(int target, Tick t);
    void noteEject(int target, Tick t);
    void noteRecover(int target, Tick t);
    /** @} */

    /** Direct by-id detect stamp, for openers that hold their incident
     *  id (the SLO burn tracker): no target routing, no risk of
     *  absorbing another fault's stamps. First call wins. */
    void noteDetectById(int id, Tick t);

    const std::vector<Incident> &incidents() const { return incidents_; }
    std::size_t count() const { return incidents_.size(); }

    /** Fold every span into one word (for run fingerprints). */
    std::uint64_t hash() const;

  private:
    Incident *latestFor(int target, Tick t);

    std::vector<Incident> incidents_;
};

} // namespace fsim

#endif // FSIM_TRACE_INCIDENT_LOG_HH
