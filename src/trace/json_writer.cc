#include "trace/json_writer.hh"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "sim/logging.hh"

namespace fsim
{

void
JsonWriter::prepareValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    fsim_assert(scopes_.empty() || scopes_.back() == 'a');
    if (needComma_)
        out_ += ',';
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    out_ += '{';
    scopes_.push_back('o');
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    fsim_assert(!scopes_.empty() && scopes_.back() == 'o' &&
                !pendingKey_);
    scopes_.pop_back();
    out_ += '}';
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    out_ += '[';
    scopes_.push_back('a');
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    fsim_assert(!scopes_.empty() && scopes_.back() == 'a');
    scopes_.pop_back();
    out_ += ']';
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    fsim_assert(!scopes_.empty() && scopes_.back() == 'o' &&
                !pendingKey_);
    if (needComma_)
        out_ += ',';
    escape(k);
    out_ += ':';
    pendingKey_ = true;
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    prepareValue();
    escape(v);
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    prepareValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out_ += buf;
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    out_ += buf;
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", (long long)v);
    out_ += buf;
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepareValue();
    out_ += v ? "true" : "false";
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    prepareValue();
    out_ += "null";
    needComma_ = true;
    return *this;
}

void
JsonWriter::escape(const std::string &s)
{
    out_ += '"';
    for (char ch : s) {
        switch (ch) {
          case '"':  out_ += "\\\""; break;
          case '\\': out_ += "\\\\"; break;
          case '\n': out_ += "\\n"; break;
          case '\r': out_ += "\\r"; break;
          case '\t': out_ += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out_ += buf;
            } else {
                out_ += ch;
            }
        }
    }
    out_ += '"';
}

const std::string &
JsonWriter::str() const
{
    fsim_assert(scopes_.empty() && !pendingKey_);
    return out_;
}

bool
JsonWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string &doc = str();
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = n == doc.size();
    ok = std::fputc('\n', f) != EOF && ok;
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace fsim
