/**
 * @file
 * Minimal dependency-free JSON emitter for the bench exporter.
 *
 * A push API mirroring the document structure: beginObject/endObject,
 * beginArray/endArray, key(), and typed value writers. The writer tracks
 * nesting to place commas and validate balanced close calls, and
 * normalizes doubles (NaN/Inf become null, which strict parsers require).
 */

#ifndef FSIM_TRACE_JSON_WRITER_HH
#define FSIM_TRACE_JSON_WRITER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fsim
{

/** Streaming JSON document builder. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value call is its value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** The finished document; asserts all scopes are closed. */
    const std::string &str() const;

    /** Write the document to @p path. @return false on I/O error. */
    bool writeFile(const std::string &path) const;

  private:
    void prepareValue();
    void escape(const std::string &s);

    std::string out_;
    /** Open scopes: 'o' = object, 'a' = array. */
    std::vector<char> scopes_;
    bool needComma_ = false;
    bool pendingKey_ = false;
};

} // namespace fsim

#endif // FSIM_TRACE_JSON_WRITER_HH
