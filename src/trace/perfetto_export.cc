#include "trace/perfetto_export.hh"

#include <algorithm>

#include "trace/json_writer.hh"

namespace fsim
{

namespace
{

/** One pre-serialized trace event. */
struct OutEvent
{
    Tick ts = 0;
    std::uint64_t connId = 0;
    std::uint64_t id = 0; //!< async / flow id
    std::uint32_t aux = 0;
    int tid = 0;
    char ph = 'B';
    const char *name = "";
    const char *cat = "conn";
    bool bindEnclosing = false; //!< flow "f": bp:"e"
};

/** A span tagged with its owning connection, for per-core sorting. */
struct CoreSpan
{
    const ConnSpan *span = nullptr;
    std::uint64_t connId = 0;
    std::uint64_t seq = 0;
};

void
writeEvent(JsonWriter &w, const OutEvent &ev)
{
    w.beginObject();
    w.key("name").value(ev.name);
    w.key("cat").value(ev.cat);
    w.key("ph").value(std::string(1, ev.ph));
    w.key("ts").value(static_cast<std::uint64_t>(ev.ts));
    w.key("pid").value(0);
    w.key("tid").value(ev.tid);
    if (ev.ph == 'b' || ev.ph == 'e' || ev.ph == 's' || ev.ph == 'f')
        w.key("id").value(ev.id);
    if (ev.bindEnclosing)
        w.key("bp").value("e");
    if (ev.ph == 'B' || ev.ph == 'b') {
        w.key("args").beginObject();
        w.key("conn").value(ev.connId);
        if (ev.aux)
            w.key("aux").value(static_cast<std::uint64_t>(ev.aux));
        w.endObject();
    }
    w.endObject();
}

} // namespace

bool
writePerfettoTrace(const std::string &path,
                   const std::vector<ConnSpanTrace> &traces,
                   const PerfettoMeta &meta, PerfettoStats *stats,
                   std::size_t max_traces)
{
    PerfettoStats st;
    const std::size_t n = std::min(traces.size(), max_traces);
    st.truncated = n < traces.size();
    st.tracesExported = n;

    // Bucket exec/sub spans per core; waits go straight to the side list.
    const int n_cores = std::max(meta.cores, 1);
    std::vector<std::vector<CoreSpan>> per_core(n_cores);
    std::vector<OutEvent> side; // async waits + flows, any order
    std::uint64_t flow_id = 0;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const ConnSpanTrace &tr = traces[i];
        const ConnSpan *prev_exec = nullptr;
        for (const ConnSpan &sp : tr.spans) {
            ++seq;
            const int core =
                sp.core >= 0 && sp.core < n_cores ? sp.core : 0;
            if (connStageKind(sp.stage) == ConnStageKind::kWait) {
                OutEvent b;
                b.ts = sp.begin;
                b.connId = tr.connId;
                b.id = tr.connId;
                b.aux = sp.aux;
                b.tid = core;
                b.ph = 'b';
                b.name = connStageName(sp.stage);
                b.cat = "wait";
                OutEvent e = b;
                e.ts = sp.end;
                e.ph = 'e';
                side.push_back(b);
                side.push_back(e);
                st.waitEvents += 2;
                continue;
            }
            per_core[core].push_back({&sp, tr.connId, seq});
            if (connStageKind(sp.stage) == ConnStageKind::kExec) {
                // Spans are recorded in event order, so consecutive exec
                // spans on different cores are a real cross-core handoff.
                if (prev_exec && prev_exec->core != sp.core) {
                    OutEvent s;
                    s.ts = prev_exec->end;
                    s.connId = tr.connId;
                    s.id = ++flow_id;
                    s.tid = prev_exec->core >= 0 &&
                                    prev_exec->core < n_cores
                                ? prev_exec->core
                                : 0;
                    s.ph = 's';
                    s.name = "conn";
                    s.cat = "conn-flow";
                    OutEvent f = s;
                    f.ts = sp.begin >= prev_exec->end ? sp.begin
                                                      : prev_exec->end;
                    f.tid = core;
                    f.ph = 'f';
                    f.bindEnclosing = true;
                    side.push_back(s);
                    side.push_back(f);
                    ++st.flowPairs;
                }
                prev_exec = &sp;
            }
        }
    }

    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();

    for (int c = 0; c < n_cores; ++c) {
        w.beginObject();
        w.key("name").value("thread_name");
        w.key("ph").value("M");
        w.key("pid").value(0);
        w.key("tid").value(c);
        w.key("args").beginObject();
        w.key("name").value("core " + std::to_string(c));
        w.endObject();
        w.endObject();
    }

    // Duration events per core: sort (begin asc, end desc) so parents
    // precede children, then a stack walk interleaves B/E in
    // non-decreasing ts order with child ends clamped to the parent.
    for (int c = 0; c < n_cores; ++c) {
        std::vector<CoreSpan> &spans = per_core[c];
        std::sort(spans.begin(), spans.end(),
                  [](const CoreSpan &a, const CoreSpan &b) {
                      if (a.span->begin != b.span->begin)
                          return a.span->begin < b.span->begin;
                      if (a.span->end != b.span->end)
                          return a.span->end > b.span->end;
                      return a.seq < b.seq;
                  });
        std::vector<OutEvent> open; // emitted B events awaiting E
        const auto emit_end = [&](const OutEvent &b, Tick ts) {
            OutEvent e = b;
            e.ts = ts;
            e.ph = 'E';
            writeEvent(w, e);
        };
        std::vector<Tick> ends;
        for (const CoreSpan &cs : spans) {
            Tick begin = cs.span->begin;
            Tick end = cs.span->end;
            while (!ends.empty() && ends.back() <= begin) {
                emit_end(open.back(), ends.back());
                ends.pop_back();
                open.pop_back();
            }
            if (!ends.empty()) {
                if (begin > ends.back())
                    begin = ends.back();
                if (end > ends.back())
                    end = ends.back();
            }
            OutEvent b;
            b.ts = begin;
            b.connId = cs.connId;
            b.aux = cs.span->aux;
            b.tid = c;
            b.ph = 'B';
            b.name = connStageName(cs.span->stage);
            b.cat = connStageKind(cs.span->stage) == ConnStageKind::kSub
                        ? "sub"
                        : "conn";
            writeEvent(w, b);
            st.durationEvents += 2;
            open.push_back(b);
            ends.push_back(end);
        }
        while (!ends.empty()) {
            emit_end(open.back(), ends.back());
            ends.pop_back();
            open.pop_back();
        }
    }

    for (const OutEvent &ev : side)
        writeEvent(w, ev);

    w.endArray();
    w.key("otherData").beginObject();
    w.key("bench").value(meta.bench);
    w.key("label").value(meta.label);
    w.key("cores").value(meta.cores);
    w.key("rfd").value(meta.rfd);
    w.key("ts_unit").value("ticks");
    w.key("traces_exported").value(st.tracesExported);
    w.key("cross_core_flows").value(st.flowPairs);
    w.key("truncated").value(st.truncated);
    w.endObject();
    w.endObject();

    if (stats)
        *stats = st;
    return w.writeFile(path);
}

} // namespace fsim
