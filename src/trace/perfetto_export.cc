#include "trace/perfetto_export.hh"

#include <algorithm>

#include "trace/json_writer.hh"

namespace fsim
{

namespace
{

/** One pre-serialized trace event. */
struct OutEvent
{
    Tick ts = 0;
    std::uint64_t connId = 0;
    std::uint64_t id = 0; //!< async / flow id
    std::uint32_t aux = 0;
    int tid = 0;
    char ph = 'B';
    const char *name = "";
    const char *cat = "conn";
    bool bindEnclosing = false; //!< flow "f": bp:"e"
};

/** A span tagged with its owning connection, for per-core sorting. */
struct CoreSpan
{
    const ConnSpan *span = nullptr;
    std::uint64_t connId = 0;
    std::uint64_t seq = 0;
};

void
writeEvent(JsonWriter &w, const OutEvent &ev)
{
    w.beginObject();
    w.key("name").value(ev.name);
    w.key("cat").value(ev.cat);
    w.key("ph").value(std::string(1, ev.ph));
    w.key("ts").value(static_cast<std::uint64_t>(ev.ts));
    w.key("pid").value(0);
    w.key("tid").value(ev.tid);
    if (ev.ph == 'b' || ev.ph == 'e' || ev.ph == 's' || ev.ph == 'f')
        w.key("id").value(ev.id);
    if (ev.bindEnclosing)
        w.key("bp").value("e");
    if (ev.ph == 'B' || ev.ph == 'b') {
        w.key("args").beginObject();
        w.key("conn").value(ev.connId);
        if (ev.aux)
            w.key("aux").value(static_cast<std::uint64_t>(ev.aux));
        w.endObject();
    }
    w.endObject();
}

} // namespace

bool
writePerfettoTrace(const std::string &path,
                   const std::vector<ConnSpanTrace> &traces,
                   const PerfettoMeta &meta, PerfettoStats *stats,
                   std::size_t max_traces)
{
    PerfettoStats st;
    const std::size_t n = std::min(traces.size(), max_traces);
    st.truncated = n < traces.size();
    st.tracesExported = n;

    // Bucket exec/sub spans per core; waits go straight to the side list.
    const int n_cores = std::max(meta.cores, 1);
    std::vector<std::vector<CoreSpan>> per_core(n_cores);
    std::vector<OutEvent> side; // async waits + flows, any order
    std::uint64_t flow_id = 0;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const ConnSpanTrace &tr = traces[i];
        const ConnSpan *prev_exec = nullptr;
        for (const ConnSpan &sp : tr.spans) {
            ++seq;
            const int core =
                sp.core >= 0 && sp.core < n_cores ? sp.core : 0;
            if (connStageKind(sp.stage) == ConnStageKind::kWait) {
                OutEvent b;
                b.ts = sp.begin;
                b.connId = tr.connId;
                b.id = tr.connId;
                b.aux = sp.aux;
                b.tid = core;
                b.ph = 'b';
                b.name = connStageName(sp.stage);
                b.cat = "wait";
                OutEvent e = b;
                e.ts = sp.end;
                e.ph = 'e';
                side.push_back(b);
                side.push_back(e);
                st.waitEvents += 2;
                continue;
            }
            per_core[core].push_back({&sp, tr.connId, seq});
            if (connStageKind(sp.stage) == ConnStageKind::kExec) {
                // Spans are recorded in event order, so consecutive exec
                // spans on different cores are a real cross-core handoff.
                if (prev_exec && prev_exec->core != sp.core) {
                    OutEvent s;
                    s.ts = prev_exec->end;
                    s.connId = tr.connId;
                    s.id = ++flow_id;
                    s.tid = prev_exec->core >= 0 &&
                                    prev_exec->core < n_cores
                                ? prev_exec->core
                                : 0;
                    s.ph = 's';
                    s.name = "conn";
                    s.cat = "conn-flow";
                    OutEvent f = s;
                    f.ts = sp.begin >= prev_exec->end ? sp.begin
                                                      : prev_exec->end;
                    f.tid = core;
                    f.ph = 'f';
                    f.bindEnclosing = true;
                    side.push_back(s);
                    side.push_back(f);
                    ++st.flowPairs;
                }
                prev_exec = &sp;
            }
        }
    }

    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();

    for (int c = 0; c < n_cores; ++c) {
        w.beginObject();
        w.key("name").value("thread_name");
        w.key("ph").value("M");
        w.key("pid").value(0);
        w.key("tid").value(c);
        w.key("args").beginObject();
        w.key("name").value("core " + std::to_string(c));
        w.endObject();
        w.endObject();
    }

    // Duration events per core: sort (begin asc, end desc) so parents
    // precede children, then a stack walk interleaves B/E in
    // non-decreasing ts order with child ends clamped to the parent.
    for (int c = 0; c < n_cores; ++c) {
        std::vector<CoreSpan> &spans = per_core[c];
        std::sort(spans.begin(), spans.end(),
                  [](const CoreSpan &a, const CoreSpan &b) {
                      if (a.span->begin != b.span->begin)
                          return a.span->begin < b.span->begin;
                      if (a.span->end != b.span->end)
                          return a.span->end > b.span->end;
                      return a.seq < b.seq;
                  });
        std::vector<OutEvent> open; // emitted B events awaiting E
        const auto emit_end = [&](const OutEvent &b, Tick ts) {
            OutEvent e = b;
            e.ts = ts;
            e.ph = 'E';
            writeEvent(w, e);
        };
        std::vector<Tick> ends;
        for (const CoreSpan &cs : spans) {
            Tick begin = cs.span->begin;
            Tick end = cs.span->end;
            while (!ends.empty() && ends.back() <= begin) {
                emit_end(open.back(), ends.back());
                ends.pop_back();
                open.pop_back();
            }
            if (!ends.empty()) {
                if (begin > ends.back())
                    begin = ends.back();
                if (end > ends.back())
                    end = ends.back();
            }
            OutEvent b;
            b.ts = begin;
            b.connId = cs.connId;
            b.aux = cs.span->aux;
            b.tid = c;
            b.ph = 'B';
            b.name = connStageName(cs.span->stage);
            b.cat = connStageKind(cs.span->stage) == ConnStageKind::kSub
                        ? "sub"
                        : "conn";
            writeEvent(w, b);
            st.durationEvents += 2;
            open.push_back(b);
            ends.push_back(end);
        }
        while (!ends.empty()) {
            emit_end(open.back(), ends.back());
            ends.pop_back();
            open.pop_back();
        }
    }

    for (const OutEvent &ev : side)
        writeEvent(w, ev);

    w.endArray();
    w.key("otherData").beginObject();
    w.key("bench").value(meta.bench);
    w.key("label").value(meta.label);
    w.key("cores").value(meta.cores);
    w.key("rfd").value(meta.rfd);
    w.key("ts_unit").value("ticks");
    w.key("traces_exported").value(st.tracesExported);
    w.key("cross_core_flows").value(st.flowPairs);
    w.key("truncated").value(st.truncated);
    w.endObject();
    w.endObject();

    if (stats)
        *stats = st;
    return w.writeFile(path);
}

namespace
{

/** Fleet track plan: distinct pids so Perfetto renders one process
 *  lane per simulated box. Machines stay below 74 (slots <= 64), so
 *  the ranges never collide. */
constexpr int kClientPid = 1;
constexpr int kMachinePidBase = 10;
constexpr int kLbPidBase = 100;

void
writeProcessName(JsonWriter &w, int pid, const std::string &name)
{
    w.beginObject();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(pid);
    w.key("tid").value(0);
    w.key("args").beginObject();
    w.key("name").value(name);
    w.endObject();
    w.endObject();
}

/** Async hop span (ph b/e) or flow endpoint (s/f) on a fleet track. */
void
writeFleetEvent(JsonWriter &w, char ph, Tick ts, int pid,
                std::uint64_t id, const char *name, const char *cat)
{
    w.beginObject();
    w.key("name").value(name);
    w.key("cat").value(cat);
    w.key("ph").value(std::string(1, ph));
    w.key("ts").value(static_cast<std::uint64_t>(ts));
    w.key("pid").value(pid);
    w.key("tid").value(0);
    w.key("id").value(id);
    w.endObject();
}

} // namespace

bool
writeFleetPerfettoTrace(const std::string &path, const FleetTraceLog &log,
                        const FleetPerfettoMeta &meta, PerfettoStats *stats,
                        std::size_t max_traces)
{
    PerfettoStats st;
    const std::vector<const FleetTrace *> done = log.sortedCompleted();
    const std::size_t n = std::min(done.size(), max_traces);
    st.truncated = n < done.size();
    st.tracesExported = n;

    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();

    writeProcessName(w, kClientPid, "clients");
    for (int b = 0; b < std::max(meta.balancers, 1); ++b)
        writeProcessName(w, kLbPidBase + b, "lb " + std::to_string(b));
    for (int m = 0; m < std::max(meta.machines, 1); ++m)
        writeProcessName(w, kMachinePidBase + m,
                         "machine " + std::to_string(m));

    for (std::size_t i = 0; i < n; ++i) {
        const FleetTrace &tr = *done[i];
        const Tick end = std::max(tr.clientEnd, tr.clientStart);
        writeFleetEvent(w, 'b', tr.clientStart, kClientPid, tr.traceId,
                        "request", "fleet");
        writeFleetEvent(w, 'e', end, kClientPid, tr.traceId, "request",
                        "fleet");
        st.waitEvents += 2;

        const bool haveLb = tr.lbFlows > 0 && tr.lbId >= 0;
        if (haveLb) {
            const int pid = kLbPidBase + tr.lbId;
            const Tick lb_end = std::max(end, tr.lbIngress);
            writeFleetEvent(w, 'b', tr.lbIngress, pid, tr.traceId, "lb",
                            "fleet");
            writeFleetEvent(w, 'e', lb_end, pid, tr.traceId, "lb",
                            "fleet");
            st.waitEvents += 2;
        }

        if (tr.stitched && tr.serverSlot >= 0) {
            const int pid = kMachinePidBase + tr.serverSlot;
            const Tick close = std::max(tr.serverClose, tr.serverOpen);
            writeFleetEvent(w, 'b', tr.serverOpen, pid, tr.traceId,
                            "server", "fleet");
            writeFleetEvent(w, 'e', close, pid, tr.traceId, "server",
                            "fleet");
            st.waitEvents += 2;
            // Cross-machine arrow: balancer admission -> server TCB
            // mint. Causality orders the mint after the ingress, so
            // the f endpoint never precedes its s.
            if (haveLb && tr.serverOpen >= tr.lbIngress) {
                writeFleetEvent(w, 's', tr.lbIngress,
                                kLbPidBase + tr.lbId, tr.traceId,
                                "steer", "fleet-flow");
                writeFleetEvent(w, 'f', tr.serverOpen, pid, tr.traceId,
                                "steer", "fleet-flow");
                ++st.flowPairs;
            }
        }
    }

    w.endArray();
    w.key("otherData").beginObject();
    w.key("bench").value(meta.bench);
    w.key("label").value(meta.label);
    w.key("machines").value(meta.machines);
    w.key("balancers").value(meta.balancers);
    w.key("rfd").value(false);
    w.key("ts_unit").value("ticks");
    w.key("traces_exported").value(st.tracesExported);
    w.key("cross_core_flows").value(st.flowPairs);
    w.key("truncated").value(st.truncated);
    w.endObject();
    w.endObject();

    if (stats)
        *stats = st;
    return w.writeFile(path);
}

} // namespace fsim
