/**
 * @file
 * Chrome trace-event (Perfetto-loadable) exporter for connection span
 * traces: one track per simulated core carrying nested B/E duration
 * events, async b/e spans for queue waits, and flow arrows (s/f) that
 * follow a connection whenever consecutive exec spans land on different
 * cores — RFD locality is literally visible as the absence of arrows.
 */

#ifndef FSIM_TRACE_PERFETTO_EXPORT_HH
#define FSIM_TRACE_PERFETTO_EXPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/conn_span.hh"
#include "trace/fleet_trace.hh"

namespace fsim
{

/** Run identity stamped into otherData of the exported trace. */
struct PerfettoMeta
{
    std::string bench;
    std::string label;
    int cores = 0;
    /** Receive Flow Deliver enabled for this row (expectation: no
     *  cross-core flow arrows when true). */
    bool rfd = false;
};

/** Exporter statistics, returned for logging / assertions. */
struct PerfettoStats
{
    std::uint64_t durationEvents = 0;
    std::uint64_t waitEvents = 0;
    std::uint64_t flowPairs = 0;       //!< cross-core s/f pairs emitted
    std::uint64_t tracesExported = 0;
    bool truncated = false;
};

/**
 * Write @p traces as trace-event JSON to @p path. Timestamps are raw
 * simulator ticks (integers; otherData.ts_unit records the unit).
 * Exports at most @p max_traces connections (completion order) to keep
 * files loadable. @return false on I/O error.
 */
bool writePerfettoTrace(const std::string &path,
                        const std::vector<ConnSpanTrace> &traces,
                        const PerfettoMeta &meta, PerfettoStats *stats,
                        std::size_t max_traces = 20000);

/** Run identity for a fleet-scope export. */
struct FleetPerfettoMeta
{
    std::string bench;
    std::string label;
    int machines = 0;
    int balancers = 0;
};

/**
 * Write @p log's completed end-to-end traces as trace-event JSON: one
 * process track per client fleet / balancer / machine, an async span
 * per hop ("request" on the client track, "lb" on the balancer that
 * admitted the flow, "server" on the machine that served it) and a
 * cross-machine flow arrow from the balancer's ingress to the server
 * TCB mint for every stitched trace. Timestamps are raw ticks.
 * @return false on I/O error.
 */
bool writeFleetPerfettoTrace(const std::string &path,
                             const FleetTraceLog &log,
                             const FleetPerfettoMeta &meta,
                             PerfettoStats *stats,
                             std::size_t max_traces = 4096);

} // namespace fsim

#endif // FSIM_TRACE_PERFETTO_EXPORT_HH
