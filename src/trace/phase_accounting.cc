#include "trace/phase_accounting.hh"

#include <string>

#include "sim/logging.hh"

namespace fsim
{

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::kApp:        return "app";
      case Phase::kSyscall:    return "syscall";
      case Phase::kSoftirq:    return "softirq";
      case Phase::kLockSpin:   return "lock-spin";
      case Phase::kCacheStall: return "cache-stall";
      case Phase::kIdle:       return "idle";
    }
    return "?";
}

const char *
traceEventName(TraceEventType t)
{
    switch (t) {
      case TraceEventType::kSyscallEnter:    return "syscall_enter";
      case TraceEventType::kSyscallExit:     return "syscall_exit";
      case TraceEventType::kSoftirqEnter:    return "softirq_enter";
      case TraceEventType::kSoftirqExit:     return "softirq_exit";
      case TraceEventType::kLockSpinBegin:   return "lock_spin_begin";
      case TraceEventType::kLockSpinEnd:     return "lock_spin_end";
      case TraceEventType::kQueueEnqueue:    return "queue_enqueue";
      case TraceEventType::kQueueDequeue:    return "queue_dequeue";
      case TraceEventType::kConnEstablished: return "conn_established";
      case TraceEventType::kConnClosed:      return "conn_closed";
      case TraceEventType::kPacketSteered:   return "packet_steered";
      case TraceEventType::kEpollWake:       return "epoll_wake";
      case TraceEventType::kAppWake:         return "app_wake";
      case TraceEventType::kBacklogDrop:     return "backlog_drop";
      case TraceEventType::kSynGateDrop:     return "syn_gate_drop";
      case TraceEventType::kAdmissionShed:   return "admission_shed";
      case TraceEventType::kAdmissionDegrade:
                                             return "admission_degrade";
    }
    return "?";
}

const char *
traceQueueName(TraceQueueId q)
{
    switch (q) {
      case TraceQueueId::kAcceptShared:    return "accept-shared";
      case TraceQueueId::kAcceptLocal:     return "accept-local";
      case TraceQueueId::kAcceptReuseport: return "accept-reuseport";
      case TraceQueueId::kSoftirqBacklog:  return "softirq-backlog";
      case TraceQueueId::kProcessBacklog:  return "process-backlog";
    }
    return "?";
}

PhaseSnapshot
phaseDelta(const PhaseSnapshot &before, const PhaseSnapshot &after)
{
    PhaseSnapshot d = after;
    for (std::size_t c = 0; c < d.perCore.size(); ++c) {
        if (c >= before.perCore.size())
            continue;
        for (int p = 0; p < kNumChargedPhases; ++p) {
            std::uint64_t b = before.perCore[c][p];
            d.perCore[c][p] -= d.perCore[c][p] > b ? b
                                                   : d.perCore[c][p];
        }
    }
    for (auto &kv : d.folded) {
        auto it = before.folded.find(kv.first);
        if (it != before.folded.end())
            kv.second -= kv.second > it->second ? it->second : kv.second;
    }
    d.untracked -= d.untracked > before.untracked ? before.untracked
                                                  : d.untracked;
    return d;
}

std::string
decodeFoldedKey(std::uint64_t key)
{
    // The key packs one phase per 4 bits, innermost in the low bits;
    // unpack to root-first order.
    Phase levels[16];
    int depth = 0;
    while (key != 0 && depth < 16) {
        levels[depth++] = static_cast<Phase>((key & 0xf) - 1);
        key >>= 4;
    }
    std::string out;
    for (int i = depth - 1; i >= 0; --i) {
        if (!out.empty())
            out += ';';
        out += phaseName(levels[i]);
    }
    return out;
}

PhaseAccounting::PhaseAccounting(int n_cores)
    : stacks_(n_cores), counts_(n_cores)
{
    fsim_assert(n_cores > 0);
    for (auto &c : counts_)
        c.fill(0);
    for (auto &s : stacks_)
        s.reserve(8);
}

void
PhaseAccounting::push(CoreId c, Phase p, Tick t)
{
    fsim_assert(p != Phase::kIdle);
    std::vector<Frame> &st = stacks_.at(c);
    Frame f;
    f.phase = p;
    f.begin = t;
    f.key = foldedKey(st.empty() ? 0 : st.back().key, p);
    st.push_back(f);
}

void
PhaseAccounting::pop(CoreId c, Tick t)
{
    std::vector<Frame> &st = stacks_.at(c);
    fsim_assert(!st.empty());
    Frame f = st.back();
    st.pop_back();

    Tick elapsed = t > f.begin ? t - f.begin : 0;
    // Nested charges are always contained in the frame's span (every
    // charged cost also advances the caller's tick cursor), but be
    // defensive against rounding: never let self time go negative and
    // never report less total than the children already charged.
    if (elapsed < f.child)
        elapsed = f.child;
    Tick self = elapsed - f.child;
    if (self > 0) {
        counts_[c][static_cast<int>(f.phase)] += self;
        folded_[f.key] += self;
    }
    if (!st.empty())
        st.back().child += elapsed;
}

void
PhaseAccounting::charge(CoreId c, Phase p, Tick cycles)
{
    if (cycles == 0)
        return;
    std::vector<Frame> &st = stacks_.at(c);
    if (st.empty()) {
        // Setup-phase work outside any task: not part of any core's
        // busy time, so it must not skew the per-core breakdowns.
        untracked_ += cycles;
        return;
    }
    counts_[c][static_cast<int>(p)] += cycles;
    folded_[foldedKey(st.back().key, p)] += cycles;
    st.back().child += cycles;
}

PhaseSnapshot
PhaseAccounting::snapshot() const
{
    PhaseSnapshot s;
    s.perCore = counts_;
    s.folded = folded_;
    s.untracked = untracked_;
    return s;
}

} // namespace fsim
