/**
 * @file
 * Cycle attribution by execution phase.
 *
 * Every simulated core carries a stack of open phase frames (pushed and
 * popped by TraceScope guards or directly by the CPU model's task loop).
 * When a frame closes, the cycles it spanned minus the cycles already
 * attributed to nested frames and direct charges — its *self time* — are
 * charged to the frame's phase and to the folded call-stack key, giving
 * flamegraph-ready output. Direct charges (lock spinning, cache-line
 * stalls) are attributed immediately at the point the simulator computes
 * them, so a lock spin inside a SoftIRQ is charged to lock-spin, not
 * SoftIRQ.
 *
 * The invariant the tests pin: the sum of all charged cycles equals the
 * total busy cycles the CPU model measured, because every frame is
 * opened/closed at task boundaries and every inner charge is contained
 * in its enclosing frame's span.
 */

#ifndef FSIM_TRACE_PHASE_ACCOUNTING_HH
#define FSIM_TRACE_PHASE_ACCOUNTING_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "trace/trace_event.hh"

namespace fsim
{

/** Point-in-time copy of all phase counters, diffable for windows. */
struct PhaseSnapshot
{
    /** Per-core charged cycles, indexed by Phase (idle stays 0). */
    std::vector<std::array<std::uint64_t, kNumChargedPhases>> perCore;
    /** Folded-stack key -> cycles (see PhaseAccounting::foldedKey). */
    std::map<std::uint64_t, std::uint64_t> folded;
    /** Cycles charged while no frame was open (setup-phase work). */
    std::uint64_t untracked = 0;
};

/** Window delta @p after - @p before (saturating at zero). */
PhaseSnapshot phaseDelta(const PhaseSnapshot &before,
                         const PhaseSnapshot &after);

/** Decode a folded-stack key to "app;syscall;lock-spin" form. */
std::string decodeFoldedKey(std::uint64_t key);

/** Per-core phase stacks and counters. */
class PhaseAccounting
{
  public:
    explicit PhaseAccounting(int n_cores);

    /** Open a frame of @p p on @p c starting at tick @p t. */
    void push(CoreId c, Phase p, Tick t);

    /**
     * Close the innermost frame on @p c at tick @p t, charging its self
     * time (span minus nested/direct charges) to its phase.
     */
    void pop(CoreId c, Tick t);

    /**
     * Charge @p cycles of @p p immediately (lock spin, cache stall).
     *
     * The charge is added to the enclosing frame's child total so the
     * frame's own self time shrinks by the same amount. With no open
     * frame the cycles are not core-attributable work (setup phase) and
     * only count toward the untracked total.
     */
    void charge(CoreId c, Phase p, Tick cycles);

    /** Open frames on @p c (diagnostics / tests). */
    int depth(CoreId c) const
    {
        return static_cast<int>(stacks_[c].size());
    }

    PhaseSnapshot snapshot() const;

    int numCores() const { return static_cast<int>(counts_.size()); }

  private:
    struct Frame
    {
        Phase phase;
        Tick begin;
        Tick child = 0;          //!< cycles attributed within this frame
        std::uint64_t key = 0;   //!< folded key including this phase
    };

    /** Folded key of @p p nested under @p parent (4 bits per level). */
    static std::uint64_t
    foldedKey(std::uint64_t parent, Phase p)
    {
        return (parent << 4) |
               (static_cast<std::uint64_t>(p) + 1);
    }

    std::vector<std::vector<Frame>> stacks_;
    std::vector<std::array<std::uint64_t, kNumChargedPhases>> counts_;
    std::map<std::uint64_t, std::uint64_t> folded_;
    std::uint64_t untracked_ = 0;
};

} // namespace fsim

#endif // FSIM_TRACE_PHASE_ACCOUNTING_HH
