#include "trace/span_forensics.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace fsim
{

namespace
{

Tick
percentileOf(const std::vector<Tick> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const double pos = p * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(pos + 0.5)];
}

ExemplarBreakdown
breakdownOf(const ConnSpanTrace &tr, const char *percentile)
{
    ExemplarBreakdown ex;
    ex.percentile = percentile;
    ex.connId = tr.connId;
    ex.latency = tr.serviceLatency();
    ex.stageTicks.assign(kNumConnStages, 0);
    ex.stageCounts.assign(kNumConnStages, 0);
    for (const ConnSpan &sp : tr.spans) {
        const int idx = static_cast<int>(sp.stage);
        ex.stageTicks[idx] += sp.end - sp.begin;
        ++ex.stageCounts[idx];
        if (connStageKind(sp.stage) != ConnStageKind::kWait &&
            sp.core >= 0 &&
            std::find(ex.cores.begin(), ex.cores.end(),
                      static_cast<int>(sp.core)) == ex.cores.end())
            ex.cores.push_back(sp.core);
    }
    std::sort(ex.cores.begin(), ex.cores.end());
    // Attributable time = exec + wait stage totals; sub-stages (lock
    // spin, VFS) live inside exec spans and would double-count.
    Tick covered = 0;
    for (int s = 0; s < kNumConnStages; ++s)
        if (connStageKind(static_cast<ConnStage>(s)) !=
            ConnStageKind::kSub)
            covered += ex.stageTicks[s];
    ex.unattributed = ex.latency > covered ? ex.latency - covered : 0;
    return ex;
}

} // namespace

SpanForensics
buildSpanForensics(const ConnSpanLog &log, std::size_t from_idx)
{
    SpanForensics f;
    f.enabled = log.enabled();
    f.live = log.liveCount();
    f.spansRecorded = log.spansRecorded();
    f.spansDropped = log.spansDropped();
    f.tracesDropped = log.tracesDropped();
    if (!f.enabled)
        return f;

    const std::vector<ConnSpanTrace> &all = log.completed();
    if (from_idx > all.size())
        from_idx = all.size();
    const std::size_t n = all.size() - from_idx;
    f.completed = n;

    // Per-stage distributions over the window's completed connections.
    std::vector<std::vector<Tick>> per_stage(kNumConnStages);
    for (std::size_t i = from_idx; i < all.size(); ++i) {
        const ConnSpanTrace &tr = all[i];
        if (tr.shedReason != ConnSpanTrace::kNotShed)
            ++f.shed;
        Tick totals[kNumConnStages] = {};
        bool seen[kNumConnStages] = {};
        for (const ConnSpan &sp : tr.spans) {
            const int idx = static_cast<int>(sp.stage);
            totals[idx] += sp.end - sp.begin;
            seen[idx] = true;
        }
        for (int s = 0; s < kNumConnStages; ++s)
            if (seen[s])
                per_stage[s].push_back(totals[s]);
    }
    for (int s = 0; s < kNumConnStages; ++s) {
        std::vector<Tick> &v = per_stage[s];
        if (v.empty())
            continue;
        std::sort(v.begin(), v.end());
        StagePercentiles sp;
        sp.stage = static_cast<ConnStage>(s);
        sp.count = v.size();
        sp.p50 = percentileOf(v, 0.50);
        sp.p90 = percentileOf(v, 0.90);
        sp.p99 = percentileOf(v, 0.99);
        sp.p999 = percentileOf(v, 0.999);
        sp.max = v.back();
        for (Tick t : v)
            sp.totalTicks += t;
        f.stages.push_back(sp);
    }

    // Exemplars: rank passive connections by service latency with a
    // (latency, connId) sort so equal latencies pick deterministically.
    std::vector<std::pair<Tick, const ConnSpanTrace *>> ranked;
    ranked.reserve(n);
    for (std::size_t i = from_idx; i < all.size(); ++i)
        if (all[i].passive)
            ranked.emplace_back(all[i].serviceLatency(), &all[i]);
    if (ranked.empty())
        for (std::size_t i = from_idx; i < all.size(); ++i)
            ranked.emplace_back(all[i].serviceLatency(), &all[i]);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second->connId < b.second->connId;
              });
    if (!ranked.empty()) {
        const auto pick = [&](double p) -> const ConnSpanTrace * {
            const double pos = p * static_cast<double>(ranked.size() - 1);
            return ranked[static_cast<std::size_t>(pos + 0.5)].second;
        };
        f.exemplars.push_back(breakdownOf(*pick(0.50), "p50"));
        f.exemplars.push_back(breakdownOf(*pick(0.99), "p99"));
        f.exemplars.push_back(breakdownOf(*pick(0.999), "p999"));

        const ExemplarBreakdown &p99 = f.exemplars[1];
        Tick best = 0;
        for (int s = 0; s < kNumConnStages; ++s) {
            if (connStageKind(static_cast<ConnStage>(s)) ==
                ConnStageKind::kSub)
                continue;
            if (p99.stageTicks[s] > best) {
                best = p99.stageTicks[s];
                f.dominantTailStage =
                    connStageName(static_cast<ConnStage>(s));
            }
        }
    }
    return f;
}

std::string
renderSpanForensics(const SpanForensics &f, const std::string &label)
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf), "tail forensics [%s]\n",
                  label.c_str());
    out += buf;
    if (!f.enabled) {
        out += "  span tracing disabled (--notrace); no data\n";
        return out;
    }
    std::snprintf(buf, sizeof(buf),
                  "  completed=%" PRIu64 " live=%" PRIu64 " shed=%" PRIu64
                  " spans=%" PRIu64 " (dropped %" PRIu64
                  " spans, %" PRIu64 " traces)\n",
                  f.completed, f.live, f.shed, f.spansRecorded,
                  f.spansDropped, f.tracesDropped);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  %-14s %9s %9s %9s %9s %9s %9s\n", "stage", "count",
                  "p50", "p90", "p99", "p999", "max");
    out += buf;
    for (const StagePercentiles &sp : f.stages) {
        std::snprintf(buf, sizeof(buf),
                      "  %-14s %9" PRIu64 " %9" PRIu64 " %9" PRIu64
                      " %9" PRIu64 " %9" PRIu64 " %9" PRIu64 "\n",
                      connStageName(sp.stage), sp.count,
                      static_cast<std::uint64_t>(sp.p50),
                      static_cast<std::uint64_t>(sp.p90),
                      static_cast<std::uint64_t>(sp.p99),
                      static_cast<std::uint64_t>(sp.p999),
                      static_cast<std::uint64_t>(sp.max));
        out += buf;
    }
    if (!f.exemplars.empty()) {
        out += "  exemplars (service latency, ticks):\n";
        for (const ExemplarBreakdown &ex : f.exemplars) {
            std::snprintf(buf, sizeof(buf),
                          "    %-4s conn #%" PRIu64 "  latency %" PRIu64
                          "  cores",
                          ex.percentile.c_str(), ex.connId,
                          static_cast<std::uint64_t>(ex.latency));
            out += buf;
            for (int c : ex.cores) {
                std::snprintf(buf, sizeof(buf), " %d", c);
                out += buf;
            }
            out += "\n";
            // Stages sorted by share, largest first, sub-stages last.
            std::vector<int> order;
            for (int s = 0; s < kNumConnStages; ++s)
                if (ex.stageTicks[s] > 0)
                    order.push_back(s);
            std::sort(order.begin(), order.end(), [&](int a, int b) {
                const bool sa = connStageKind(static_cast<ConnStage>(a)) ==
                                ConnStageKind::kSub;
                const bool sb = connStageKind(static_cast<ConnStage>(b)) ==
                                ConnStageKind::kSub;
                if (sa != sb)
                    return sb;
                if (ex.stageTicks[a] != ex.stageTicks[b])
                    return ex.stageTicks[a] > ex.stageTicks[b];
                return a < b;
            });
            for (int s : order) {
                const double share =
                    ex.latency
                        ? 100.0 * static_cast<double>(ex.stageTicks[s]) /
                              static_cast<double>(ex.latency)
                        : 0.0;
                std::snprintf(
                    buf, sizeof(buf),
                    "      %-14s %9" PRIu64 "  %5.1f%%  (x%u)%s\n",
                    connStageName(static_cast<ConnStage>(s)),
                    static_cast<std::uint64_t>(ex.stageTicks[s]), share,
                    ex.stageCounts[s],
                    connStageKind(static_cast<ConnStage>(s)) ==
                            ConnStageKind::kSub
                        ? "  [sub]"
                        : "");
                out += buf;
            }
            if (ex.unattributed > 0) {
                const double share =
                    ex.latency ? 100.0 *
                                     static_cast<double>(ex.unattributed) /
                                     static_cast<double>(ex.latency)
                               : 0.0;
                std::snprintf(buf, sizeof(buf),
                              "      %-14s %9" PRIu64 "  %5.1f%%\n",
                              "(unattributed)",
                              static_cast<std::uint64_t>(ex.unattributed),
                              share);
                out += buf;
            }
        }
        std::snprintf(buf, sizeof(buf), "  dominant tail stage: %s\n",
                      f.dominantTailStage.c_str());
        out += buf;
    }
    return out;
}

} // namespace fsim
