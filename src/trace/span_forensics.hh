/**
 * @file
 * Tail-latency forensics built on the per-connection span log: per-stage
 * latency percentiles plus p50/p99/p999 exemplar connections with a
 * critical-path stage breakdown. Answers "which stage makes p99 25x p50"
 * with named connections you can go look at.
 */

#ifndef FSIM_TRACE_SPAN_FORENSICS_HH
#define FSIM_TRACE_SPAN_FORENSICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/conn_span.hh"

namespace fsim
{

/** Distribution of one stage's per-connection total time (ticks). */
struct StagePercentiles
{
    ConnStage stage = ConnStage::kSynRx;
    /** Connections with at least one span of this stage. */
    std::uint64_t count = 0;
    Tick p50 = 0;
    Tick p90 = 0;
    Tick p99 = 0;
    Tick p999 = 0;
    Tick max = 0;
    /** Sum over all connections, for share-of-latency math. */
    std::uint64_t totalTicks = 0;
};

/** One exemplar connection picked at a latency percentile rank. */
struct ExemplarBreakdown
{
    std::string percentile; //!< "p50", "p99", "p999"
    std::uint64_t connId = 0;
    Tick latency = 0;       //!< service latency (open -> last write)
    /** Per-stage total ticks, indexed by ConnStage. */
    std::vector<Tick> stageTicks;
    /** Per-stage span counts, indexed by ConnStage. */
    std::vector<std::uint32_t> stageCounts;
    /** Distinct cores that executed spans of this connection. */
    std::vector<int> cores;
    /** Latency not covered by any exec/wait span (queue gaps, wire). */
    Tick unattributed = 0;
};

/** Forensics summary over the measured window's completed connections. */
struct SpanForensics
{
    bool enabled = false;
    std::uint64_t completed = 0;  //!< completed traces in the window
    std::uint64_t live = 0;       //!< still-open traces at collect time
    std::uint64_t shed = 0;       //!< completed traces shed by admission
    std::uint64_t spansRecorded = 0;
    std::uint64_t spansDropped = 0;
    std::uint64_t tracesDropped = 0;
    /** Stages observed at least once, in ConnStage order. */
    std::vector<StagePercentiles> stages;
    /** p50 / p99 / p999 exemplars (present when completed > 0). */
    std::vector<ExemplarBreakdown> exemplars;
    /** Stage with the largest share of the p99 exemplar's latency
     *  (exec or wait stages only); empty when no exemplars. */
    std::string dominantTailStage;
};

/**
 * Build forensics over completed traces [from_idx, end) of @p log.
 * Exemplars rank passive (client-facing) connections by service latency
 * with deterministic tie-breaks; falls back to all connections when no
 * passive ones completed.
 */
SpanForensics buildSpanForensics(const ConnSpanLog &log,
                                 std::size_t from_idx);

/** Human-readable report (the --forensics output). */
std::string renderSpanForensics(const SpanForensics &f,
                                const std::string &label);

} // namespace fsim

#endif // FSIM_TRACE_SPAN_FORENSICS_HH
