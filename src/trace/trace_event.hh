/**
 * @file
 * Trace event and phase vocabulary of the simulated perf/ftrace layer.
 *
 * Events are typed records emitted at named kernel hook points (syscall
 * entry/exit, SoftIRQ entry/exit, lock spins, queue operations,
 * connection lifecycle) into per-core rings; phases are the buckets the
 * PhaseAccounting layer attributes every simulated cycle to, reproducing
 * the paper's Figure 5-style CPU breakdowns for any workload.
 */

#ifndef FSIM_TRACE_TRACE_EVENT_HH
#define FSIM_TRACE_TRACE_EVENT_HH

#include <cstdint>

#include "sim/types.hh"

namespace fsim
{

/**
 * Execution phase a simulated cycle is charged to.
 *
 * kIdle is derived (window span minus attributed cycles) rather than
 * charged, so it is last and excluded from kNumChargedPhases.
 */
enum class Phase : std::uint8_t
{
    kApp = 0,        //!< process-context application work
    kSyscall,        //!< kernel syscall surface (accept/read/write/...)
    kSoftirq,        //!< NET_RX / timer SoftIRQ context
    kLockSpin,       //!< spinning on a simulated lock
    kCacheStall,     //!< remote cache-line transfer penalties
    kIdle,           //!< derived: core had no work
};

/** Number of phases that receive direct cycle charges. */
constexpr int kNumChargedPhases = static_cast<int>(Phase::kIdle);

/** Total number of phases including the derived idle phase. */
constexpr int kNumPhases = kNumChargedPhases + 1;

/** Stable lowercase phase name ("app", "syscall", "lock-spin", ...). */
const char *phaseName(Phase p);

/** Typed trace event kinds, one per named hook point. */
enum class TraceEventType : std::uint8_t
{
    kSyscallEnter = 0,   //!< id = SyscallId
    kSyscallExit,        //!< id = SyscallId
    kSoftirqEnter,       //!< SoftIRQ task starts on this core
    kSoftirqExit,
    kLockSpinBegin,      //!< id = lock class id, arg = spin cycles
    kLockSpinEnd,        //!< id = lock class id
    kQueueEnqueue,       //!< id = TraceQueueId, arg = depth after push
    kQueueDequeue,       //!< id = TraceQueueId, arg = depth after pop
    kConnEstablished,    //!< arg = low 32 bits of socket id
    kConnClosed,         //!< arg = low 32 bits of socket id
    kPacketSteered,      //!< RFD software steer, arg = target core
    kEpollWake,          //!< arg = fd made ready
    kAppWake,            //!< id = process, arg = 1 if remote wakeup
    kBacklogDrop,        //!< SoftIRQ budget drop, arg = queue depth
    kSynGateDrop,        //!< SYN ingress gate drop, arg = queue depth
    kAdmissionShed,      //!< id = ShedReason, arg = worker
    kAdmissionDegrade,   //!< brownout admission, arg = worker
};

/** Stable event-type name used by reports and the JSON exporter. */
const char *traceEventName(TraceEventType t);

/** Syscall identifiers carried by kSyscallEnter/Exit events. */
enum class SyscallId : std::uint16_t
{
    kAccept = 0,
    kConnect,
    kRead,
    kWrite,
    kClose,
    kEpollWait,
    kEpollCtl,
};

/** Queue identifiers carried by kQueueEnqueue/Dequeue events. */
enum class TraceQueueId : std::uint16_t
{
    kAcceptShared = 0,   //!< global/shared listen socket accept queue
    kAcceptLocal,        //!< Local Listen Table clone accept queue
    kAcceptReuseport,    //!< SO_REUSEPORT clone accept queue
    kSoftirqBacklog,     //!< per-core SoftIRQ task backlog
    kProcessBacklog,     //!< per-core process-context task backlog
};

/** Stable queue name used by reports and the JSON exporter. */
const char *traceQueueName(TraceQueueId q);

/** One recorded trace event (16 bytes; rings preallocate these). */
struct TraceEvent
{
    Tick tick = 0;                 //!< simulated time of the event
    std::uint32_t arg = 0;         //!< event-specific payload
    std::uint16_t id = 0;          //!< event-specific identifier
    TraceEventType type = TraceEventType::kSyscallEnter;
};

static_assert(sizeof(TraceEvent) <= 16, "TraceEvent must stay compact");

} // namespace fsim

#endif // FSIM_TRACE_TRACE_EVENT_HH
