#include "trace/trace_report.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"
#include "stats/stats.hh"

namespace fsim
{

double
PhaseBreakdown::total(Phase p) const
{
    if (fractions.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &core : fractions)
        s += core[static_cast<int>(p)];
    return s / static_cast<double>(fractions.size());
}

PhaseBreakdown
phaseBreakdown(const PhaseSnapshot &d, Tick span)
{
    PhaseBreakdown b;
    b.fractions.resize(d.perCore.size());
    for (std::size_t c = 0; c < d.perCore.size(); ++c) {
        auto &f = b.fractions[c];
        f.fill(0.0);
        if (span == 0)
            continue;
        std::uint64_t busy = 0;
        for (int p = 0; p < kNumChargedPhases; ++p)
            busy += d.perCore[c][p];
        // A task that started inside the window may finish past its
        // end, so attributed cycles can slightly exceed the span; scale
        // the busy phases down pro rata so fractions stay a partition.
        double denom = static_cast<double>(span);
        double scale = busy > span ? denom / static_cast<double>(busy)
                                   : 1.0;
        double busy_frac = 0.0;
        for (int p = 0; p < kNumChargedPhases; ++p) {
            f[p] = static_cast<double>(d.perCore[c][p]) * scale / denom;
            busy_frac += f[p];
        }
        f[static_cast<int>(Phase::kIdle)] =
            busy_frac < 1.0 ? 1.0 - busy_frac : 0.0;
    }
    return b;
}

TextTable
phaseBreakdownTable(const PhaseBreakdown &b)
{
    TextTable table;
    std::vector<std::string> hdr{"core"};
    for (int p = 0; p < kNumPhases; ++p)
        hdr.push_back(phaseName(static_cast<Phase>(p)));
    table.header(hdr);
    for (std::size_t c = 0; c < b.fractions.size(); ++c) {
        std::vector<std::string> row{std::to_string(c)};
        for (int p = 0; p < kNumPhases; ++p)
            row.push_back(formatPercent(b.fractions[c][p]));
        table.row(row);
    }
    if (b.fractions.size() > 1) {
        std::vector<std::string> row{"all"};
        for (int p = 0; p < kNumPhases; ++p)
            row.push_back(formatPercent(b.total(static_cast<Phase>(p))));
        table.row(row);
    }
    return table;
}

std::vector<std::pair<std::string, std::uint64_t>>
foldedStacks(const PhaseSnapshot &d)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(d.folded.size());
    for (const auto &kv : d.folded) {
        if (kv.second == 0)
            continue;
        out.emplace_back(decodeFoldedKey(kv.first), kv.second);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second != b.second ? a.second > b.second
                                              : a.first < b.first;
              });
    return out;
}

std::vector<QueueSample>
queueTimeline(const Tracer &tracer, TraceQueueId queue,
              std::size_t max_samples)
{
    std::vector<QueueSample> out;
    for (int c = 0; c < tracer.numCores(); ++c) {
        const TraceRing &r = tracer.ring(c);
        for (std::size_t i = 0; i < r.size(); ++i) {
            const TraceEvent &ev = r.at(i);
            if (ev.type != TraceEventType::kQueueEnqueue &&
                ev.type != TraceEventType::kQueueDequeue)
                continue;
            if (static_cast<TraceQueueId>(ev.id) != queue)
                continue;
            QueueSample s;
            s.tick = ev.tick;
            s.depth = ev.arg;
            s.queue = queue;
            out.push_back(s);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const QueueSample &a, const QueueSample &b) {
                  return a.tick < b.tick;
              });
    if (max_samples > 0 && out.size() > max_samples) {
        std::vector<QueueSample> thin;
        thin.reserve(max_samples);
        double step = static_cast<double>(out.size()) /
                      static_cast<double>(max_samples);
        for (std::size_t i = 0; i < max_samples; ++i)
            thin.push_back(out[static_cast<std::size_t>(
                static_cast<double>(i) * step)]);
        out.swap(thin);
    }
    return out;
}

} // namespace fsim
