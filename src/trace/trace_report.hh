/**
 * @file
 * Report generators over trace data: per-core phase breakdown tables
 * (the paper's Figure 5 / Table 1 analysis for any bench), folded-stack
 * output consumable by standard flamegraph tooling, and queue-depth
 * timelines recovered from the event rings.
 */

#ifndef FSIM_TRACE_TRACE_REPORT_HH
#define FSIM_TRACE_TRACE_REPORT_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stats/table.hh"
#include "trace/tracer.hh"

namespace fsim
{

/**
 * Per-core phase fractions over a window.
 *
 * Fractions are normalized so each core's sum over all phases
 * (including the derived idle phase) is exactly 1 when the window is
 * non-empty: idle absorbs the unattributed remainder, and a core whose
 * in-flight task ran past the window end is scaled down pro rata.
 */
struct PhaseBreakdown
{
    /** fractions[core][phase], indexed by Phase (idle included). */
    std::vector<std::array<double, kNumPhases>> fractions;

    /** Machine-wide fraction of one phase (mean over cores). */
    double total(Phase p) const;
};

/** Attribute a window's cycles: @p d over @p span ticks per core. */
PhaseBreakdown phaseBreakdown(const PhaseSnapshot &d, Tick span);

/** Render the breakdown as a fixed-width table (Fig. 5 style). */
TextTable phaseBreakdownTable(const PhaseBreakdown &b);

/**
 * Folded-stack lines ("softirq;lock-spin <cycles>"), heaviest first —
 * pipe into flamegraph.pl / inferno to render a flamegraph.
 */
std::vector<std::pair<std::string, std::uint64_t>> foldedStacks(
    const PhaseSnapshot &d);

/** One queue-depth observation recovered from the rings. */
struct QueueSample
{
    Tick tick = 0;
    std::uint32_t depth = 0;
    TraceQueueId queue = TraceQueueId::kAcceptShared;
};

/**
 * Depth timeline of @p queue across all cores, oldest first. Covers
 * whatever the rings retain (overwrite mode keeps the newest window).
 * Pass @p max_samples to downsample long timelines evenly.
 */
std::vector<QueueSample> queueTimeline(const Tracer &tracer,
                                       TraceQueueId queue,
                                       std::size_t max_samples = 0);

} // namespace fsim

#endif // FSIM_TRACE_TRACE_REPORT_HH
