/**
 * @file
 * Fixed-capacity per-core trace event ring.
 *
 * The ring is preallocated at construction and never allocates on the
 * hot path; when full it overwrites the oldest event (ftrace's default
 * overwrite mode), so the ring always holds the most recent window of
 * activity. Total pushes are counted, so the number of overwritten
 * events is always recoverable.
 */

#ifndef FSIM_TRACE_TRACE_RING_HH
#define FSIM_TRACE_TRACE_RING_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace_event.hh"

namespace fsim
{

/** One core's event ring (overwrite-oldest semantics). */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity)
        : buf_(capacity)
    {
    }

    /** Record @p ev, overwriting the oldest event when full. */
    void
    push(const TraceEvent &ev)
    {
        buf_[pushed_ % buf_.size()] = ev;
        ++pushed_;
    }

    std::size_t capacity() const { return buf_.size(); }

    /** Events currently held (≤ capacity). */
    std::size_t
    size() const
    {
        return pushed_ < buf_.size() ? static_cast<std::size_t>(pushed_)
                                     : buf_.size();
    }

    /** Total events ever pushed. */
    std::uint64_t pushed() const { return pushed_; }

    /** Events lost to overwriting (pushed - size). */
    std::uint64_t overwritten() const { return pushed_ - size(); }

    /** The @p i -th retained event, oldest first (0 ≤ i < size()). */
    const TraceEvent &
    at(std::size_t i) const
    {
        std::uint64_t oldest = pushed_ - size();
        return buf_[(oldest + i) % buf_.size()];
    }

    void
    clear()
    {
        pushed_ = 0;
    }

  private:
    std::vector<TraceEvent> buf_;
    std::uint64_t pushed_ = 0;
};

} // namespace fsim

#endif // FSIM_TRACE_TRACE_RING_HH
