/**
 * @file
 * RAII phase-frame guard.
 *
 * The simulator threads virtual time through explicit tick cursors, so a
 * scope cannot learn its end tick from the destructor alone: callers
 * close() with the final cursor (which also forwards the tick, so
 * `return ts.close(t);` reads naturally). A scope destroyed without
 * close() — an early return that predates instrumentation — closes at
 * its start plus whatever nested work was charged, attributing zero
 * self time rather than corrupting the stack.
 */

#ifndef FSIM_TRACE_TRACE_SCOPE_HH
#define FSIM_TRACE_TRACE_SCOPE_HH

#include "trace/tracer.hh"

namespace fsim
{

/** Opens a phase frame for the lifetime of a lexical scope. */
class TraceScope
{
  public:
    /**
     * Open a frame of @p p on core @p c at tick @p begin. A null
     * @p tracer makes the scope a no-op (components under unit test
     * without a machine).
     */
    TraceScope(Tracer *tracer, CoreId c, Phase p, Tick begin)
        : tracer_(tracer), core_(c), begin_(begin)
    {
        if (tracer_)
            tracer_->pushPhase(core_, p, begin_);
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Close the frame at tick @p end. @return @p end for chaining. */
    Tick
    close(Tick end)
    {
        if (tracer_ && open_) {
            open_ = false;
            tracer_->popPhase(core_, end);
        }
        return end;
    }

    ~TraceScope()
    {
        // Unclosed scope: pop with zero self time (begin_ is a floor;
        // PhaseAccounting extends to cover any nested charges).
        if (tracer_ && open_)
            tracer_->popPhase(core_, begin_);
    }

  private:
    Tracer *tracer_;
    CoreId core_;
    Tick begin_;
    bool open_ = true;
};

} // namespace fsim

#endif // FSIM_TRACE_TRACE_SCOPE_HH
