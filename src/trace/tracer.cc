#include "trace/tracer.hh"

#include "sim/logging.hh"

namespace fsim
{

Tracer::Tracer(int n_cores, std::size_t ring_capacity)
    : phases_(n_cores)
{
    fsim_assert(n_cores > 0 && ring_capacity > 0);
    rings_.reserve(n_cores);
    for (int c = 0; c < n_cores; ++c)
        rings_.emplace_back(ring_capacity);
}

std::uint64_t
Tracer::eventsRecorded() const
{
    std::uint64_t total = 0;
    for (const TraceRing &r : rings_)
        total += r.pushed();
    return total;
}

std::uint64_t
Tracer::eventsOverwritten() const
{
    std::uint64_t total = 0;
    for (const TraceRing &r : rings_)
        total += r.overwritten();
    return total;
}

std::uint64_t
Tracer::eventsOverwritten(CoreId c) const
{
    return rings_.at(c).overwritten();
}

} // namespace fsim
