/**
 * @file
 * The per-machine tracer: the simulator's perf + ftrace + /proc/lockstat.
 *
 * Owns one TraceRing per core and the PhaseAccounting layer. Emission is
 * branch-cheap and allocation-free, so instrumentation stays enabled in
 * every run; components reached through long init chains (locks, epoll,
 * VFS) find the tracer through the LockRegistry instead of growing their
 * constructor signatures.
 */

#ifndef FSIM_TRACE_TRACER_HH
#define FSIM_TRACE_TRACER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hh"
#include "trace/conn_span.hh"
#include "trace/phase_accounting.hh"
#include "trace/trace_event.hh"
#include "trace/trace_ring.hh"

namespace fsim
{

/** Per-machine trace subsystem. */
class Tracer
{
  public:
    /** Default per-core ring capacity (events). */
    static constexpr std::size_t kDefaultRingCapacity = 8192;

    explicit Tracer(int n_cores,
                    std::size_t ring_capacity = kDefaultRingCapacity);

    /** Master switch; rings, phase charges and the span log honor it. */
    void
    setEnabled(bool on)
    {
        enabled_ = on;
        spans_.setEnabled(on);
    }
    bool enabled() const { return enabled_; }

    /** Record an event into core @p c's ring. */
    void
    emit(CoreId c, TraceEventType type, Tick tick, std::uint32_t arg = 0,
         std::uint16_t id = 0)
    {
        if (!enabled_)
            return;
        TraceEvent ev;
        ev.tick = tick;
        ev.arg = arg;
        ev.id = id;
        ev.type = type;
        rings_[c].push(ev);
    }

    /** @name Phase attribution (see PhaseAccounting) */
    /** @{ */
    void
    pushPhase(CoreId c, Phase p, Tick t)
    {
        if (enabled_)
            phases_.push(c, p, t);
    }

    void
    popPhase(CoreId c, Tick t)
    {
        if (enabled_)
            phases_.pop(c, t);
    }

    void
    chargePhase(CoreId c, Phase p, Tick cycles)
    {
        if (enabled_)
            phases_.charge(c, p, cycles);
    }
    /** @} */

    /** Convenience hook for lock spins: event pair + phase charge. */
    void
    noteLockSpin(CoreId c, Tick t, Tick spin, std::uint16_t lock_class)
    {
        if (!enabled_ || spin == 0)
            return;
        emit(c, TraceEventType::kLockSpinBegin, t,
             static_cast<std::uint32_t>(spin), lock_class);
        emit(c, TraceEventType::kLockSpinEnd, t + spin, 0, lock_class);
        phases_.charge(c, Phase::kLockSpin, spin);
    }

    /** Convenience hook for cache stalls: phase charge only (too hot
     *  for per-access events). */
    void
    noteCacheStall(CoreId c, Tick cycles)
    {
        if (enabled_)
            phases_.charge(c, Phase::kCacheStall, cycles);
    }

    const TraceRing &ring(CoreId c) const { return rings_.at(c); }
    int numCores() const { return static_cast<int>(rings_.size()); }

    PhaseSnapshot phaseSnapshot() const { return phases_.snapshot(); }
    const PhaseAccounting &phases() const { return phases_; }

    /** Total events recorded / overwritten across all rings. */
    std::uint64_t eventsRecorded() const;
    std::uint64_t eventsOverwritten() const;

    /** Events overwritten in core @p c's ring alone. */
    std::uint64_t eventsOverwritten(CoreId c) const;

    /** Per-connection lifecycle span log. */
    ConnSpanLog &connSpans() { return spans_; }
    const ConnSpanLog &connSpans() const { return spans_; }

  private:
    bool enabled_ = true;
    std::vector<TraceRing> rings_;
    PhaseAccounting phases_;
    ConnSpanLog spans_;
};

} // namespace fsim

#endif // FSIM_TRACE_TRACER_HH
