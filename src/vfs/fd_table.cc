#include "vfs/fd_table.hh"

#include <bit>

#include "sim/logging.hh"

namespace fsim
{

FdTable::FdTable(int first_fd)
    : firstFd_(first_fd)
{
    fsim_assert(first_fd >= 0);
    bits_.resize(4, 0);
    // Mark everything below firstFd_ as permanently taken.
    for (int fd = 0; fd < firstFd_; ++fd)
        bits_[fd / kBitsPerWord] |= 1ull << (fd % kBitsPerWord);
    highWater_ = firstFd_;
}

int
FdTable::alloc()
{
    for (std::size_t w = 0; w < bits_.size(); ++w) {
        if (bits_[w] == ~0ull)
            continue;
        int bit = std::countr_one(bits_[w]);
        int fd = static_cast<int>(w) * kBitsPerWord + bit;
        bits_[w] |= 1ull << bit;
        ++openCount_;
        if (fd + 1 > highWater_)
            highWater_ = fd + 1;
        return fd;
    }
    // All words full: grow and take the first new bit.
    int fd = static_cast<int>(bits_.size()) * kBitsPerWord;
    bits_.push_back(1);
    ++openCount_;
    highWater_ = fd + 1;
    return fd;
}

bool
FdTable::free(int fd)
{
    if (fd < firstFd_)
        return false;
    std::size_t w = static_cast<std::size_t>(fd) / kBitsPerWord;
    if (w >= bits_.size())
        return false;
    std::uint64_t mask = 1ull << (fd % kBitsPerWord);
    if (!(bits_[w] & mask))
        return false;
    bits_[w] &= ~mask;
    --openCount_;
    return true;
}

bool
FdTable::inUse(int fd) const
{
    if (fd < 0)
        return false;
    std::size_t w = static_cast<std::size_t>(fd) / kBitsPerWord;
    if (w >= bits_.size())
        return false;
    return bits_[w] & (1ull << (fd % kBitsPerWord));
}

} // namespace fsim
