/**
 * @file
 * Per-process file-descriptor table implementing the POSIX
 * lowest-available-fd rule with a bitmap scan, like the kernel's fd_set
 * based allocator.
 *
 * The paper (section 5, "Relaxing System Call Restrictions") explains why
 * Fastsocket keeps this rule: applications such as HAProxy index per
 * connection arrays by fd and rely on fds staying dense.
 */

#ifndef FSIM_VFS_FD_TABLE_HH
#define FSIM_VFS_FD_TABLE_HH

#include <cstdint>
#include <vector>

namespace fsim
{

/** Bitmap-based lowest-available file descriptor allocator. */
class FdTable
{
  public:
    /** @param first_fd Lowest fd handed out (3 leaves room for std fds). */
    explicit FdTable(int first_fd = 3);

    /** Allocate the lowest available descriptor. */
    int alloc();

    /**
     * Release a descriptor.
     *
     * @return false if the fd was not allocated (double close).
     */
    bool free(int fd);

    bool inUse(int fd) const;

    /** Number of currently open descriptors. */
    int openCount() const { return openCount_; }

    /** One past the highest fd ever allocated. */
    int highWater() const { return highWater_; }

  private:
    static constexpr int kBitsPerWord = 64;

    int firstFd_;
    int openCount_ = 0;
    int highWater_ = 0;
    std::vector<std::uint64_t> bits_;
};

} // namespace fsim

#endif // FSIM_VFS_FD_TABLE_HH
