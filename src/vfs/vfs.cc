#include "vfs/vfs.hh"

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace fsim
{

VfsLayer::VfsLayer(VfsMode mode, LockRegistry &locks, CacheModel &cache,
                   const CycleCosts &costs, int fine_buckets)
    : mode_(mode), cache_(cache), costs_(costs), tracer_(locks.tracer())
{
    fsim_assert(fine_buckets > 0);
    LockClassStats *dcache = locks.getClass("dcache_lock");
    LockClassStats *inode = locks.getClass("inode_lock");
    switch (mode_) {
      case VfsMode::kGlobalLocks:
        dcacheLock_.init(dcache, &cache_, costs_.lockAcquireBase,
                         costs_.lockHandoffStorm);
        inodeLock_.init(inode, &cache_, costs_.lockAcquireBase,
                        costs_.lockHandoffStorm);
        break;
      case VfsMode::kFineGrained:
        dcacheBuckets_.resize(fine_buckets);
        inodeBuckets_.resize(fine_buckets);
        for (auto &l : dcacheBuckets_)
            l.init(dcache, &cache_, costs_.lockAcquireBase,
                   costs_.lockHandoffStorm);
        for (auto &l : inodeBuckets_)
            l.init(inode, &cache_, costs_.lockAcquireBase,
                   costs_.lockHandoffStorm);
        break;
      case VfsMode::kFastsocket:
        // No dentry/inode locks on the socket fast path.
        break;
    }
}

VfsLayer::~VfsLayer() = default;

VfsLayer::PoolSlot &
VfsLayer::slotAt(std::uint32_t idx)
{
    return pool_[idx / kPoolChunk][idx % kPoolChunk];
}

SimSpinLock &
VfsLayer::dcacheBucket(std::uint64_t ino)
{
    return dcacheBuckets_[ino % dcacheBuckets_.size()];
}

SimSpinLock &
VfsLayer::inodeBucket(std::uint64_t ino)
{
    return inodeBuckets_[ino % inodeBuckets_.size()];
}

Tick
VfsLayer::allocSocketFile(CoreId c, Tick t, void *sock, SocketFile **out,
                          std::uint64_t conn_id)
{
    const Tick begin = t;
    PoolSlot *slot;
    if (poolFree_ != kPoolNone) {
        slot = &slotAt(poolFree_);
        poolFree_ = slot->nextFree;
    } else {
        if (poolUsed_ == pool_.size() * kPoolChunk)
            pool_.push_back(std::make_unique<PoolSlot[]>(kPoolChunk));
        slot = &slotAt(poolUsed_);
        slot->selfIdx = poolUsed_++;
    }
    slot->live = true;
    SocketFile *file = &slot->file;
    *file = SocketFile{};
    file->ino = nextIno_++;
    file->priv = sock;
    file->cacheObj = cache_.newObject();
    t += cache_.access(c, file->cacheObj, /*write=*/true);
    ++totalAllocs_;

    switch (mode_) {
      case VfsMode::kGlobalLocks:
        // Full dentry + inode initialization, linked into the global
        // tables under the two global locks.
        t += costs_.vfsAllocHeavy;
        t = dcacheLock_.runLocked(c, t, costs_.dcacheLockHold);
        t = inodeLock_.runLocked(c, t, costs_.inodeLockHold);
        break;
      case VfsMode::kFineGrained:
        t += costs_.vfsAllocHeavy;
        t = dcacheBucket(file->ino).runLocked(c, t, costs_.vfsFineLockHold);
        t = inodeBucket(file->ino).runLocked(c, t, costs_.vfsFineLockHold);
        break;
      case VfsMode::kFastsocket:
        // Skip dentry/inode init; keep only the skeletal state needed by
        // the /proc file system (section 3.4).
        t += costs_.vfsAllocFast;
        file->fastPath = true;
        break;
    }

    ++liveFiles_;
    *out = file;
    if (conn_id && tracer_ && tracer_->enabled())
        tracer_->connSpans().add(conn_id, ConnStage::kVfs, c, begin, t,
                                 static_cast<std::uint32_t>(mode_));
    return t;
}

Tick
VfsLayer::freeSocketFile(CoreId c, Tick t, SocketFile *file,
                         std::uint64_t conn_id)
{
    const Tick begin = t;
    fsim_assert(file != nullptr);
    PoolSlot *slot = reinterpret_cast<PoolSlot *>(file);
    if (!slot->live)
        fsim_panic("double free of socket file ino=%llu",
                   (unsigned long long)file->ino);

    t += cache_.access(c, file->cacheObj, /*write=*/true);

    switch (mode_) {
      case VfsMode::kGlobalLocks:
        t += costs_.vfsFreeHeavy;
        t = dcacheLock_.runLocked(c, t, costs_.dcacheLockHold);
        t = inodeLock_.runLocked(c, t, costs_.inodeLockHold);
        break;
      case VfsMode::kFineGrained:
        t += costs_.vfsFreeHeavy;
        t = dcacheBucket(file->ino).runLocked(c, t, costs_.vfsFineLockHold);
        t = inodeBucket(file->ino).runLocked(c, t, costs_.vfsFineLockHold);
        break;
      case VfsMode::kFastsocket:
        t += costs_.vfsFreeFast;
        break;
    }

    cache_.freeObject(file->cacheObj);
    slot->live = false;
    slot->nextFree = poolFree_;
    poolFree_ = slot->selfIdx;
    --liveFiles_;
    if (conn_id && tracer_ && tracer_->enabled())
        tracer_->connSpans().add(conn_id, ConnStage::kVfs, c, begin, t,
                                 static_cast<std::uint32_t>(mode_));
    return t;
}

std::vector<const SocketFile *>
VfsLayer::procWalk() const
{
    std::vector<const SocketFile *> out;
    out.reserve(liveFiles_);
    // Slot order: deterministic, unlike the hash-map walk it replaces.
    for (std::uint32_t i = 0; i < poolUsed_; ++i) {
        const PoolSlot &slot = pool_[i / kPoolChunk][i % kPoolChunk];
        if (slot.live)
            out.push_back(&slot.file);
    }
    return out;
}

} // namespace fsim
