/**
 * @file
 * The VFS socket-file layer, in three flavors:
 *
 *  - kGlobalLocks: Linux 2.6.32 semantics. Allocating/destroying a socket
 *    file initializes a dentry and an inode and links them into globally
 *    visible tables under the global dcache_lock and inode_lock — the two
 *    hottest rows of the paper's Table 1.
 *  - kFineGrained: Linux 3.13 semantics. Same work, but the tables are
 *    protected by per-bucket locks (cheaper, still shared).
 *  - kFastsocket: the paper's Fastsocket-aware VFS. Socket files skip the
 *    dentry/inode initialization entirely (they are memory-only objects
 *    never named by a path) but keep a skeletal entry so /proc-style tools
 *    such as netstat and lsof still see every socket (section 3.4).
 */

#ifndef FSIM_VFS_VFS_HH
#define FSIM_VFS_VFS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/cache_model.hh"
#include "cpu/cycle_costs.hh"
#include "sim/types.hh"
#include "sync/lock_registry.hh"
#include "sync/spinlock.hh"

namespace fsim
{

class Tracer;

/** Which VFS implementation the simulated kernel runs. */
enum class VfsMode
{
    kGlobalLocks,   //!< 2.6.32: global dcache_lock / inode_lock
    kFineGrained,   //!< 3.13: per-bucket locks
    kFastsocket,    //!< Fastsocket-aware fast path
};

/** A socket file object (the VFS view of a socket). */
struct SocketFile
{
    std::uint64_t ino = 0;          //!< inode number (0 = skeletal)
    void *priv = nullptr;           //!< the socket TCB behind this file
    bool fastPath = false;          //!< allocated via the Fastsocket path
    std::uint64_t cacheObj = 0;     //!< cache line of the file struct
    int fd = -1;                    //!< descriptor in the owning process
    int owner = -1;                 //!< owning process id
};

/** The socket-file portion of VFS. */
class VfsLayer
{
  public:
    /**
     * @param fine_buckets Bucket count for the 3.13-style tables.
     */
    VfsLayer(VfsMode mode, LockRegistry &locks, CacheModel &cache,
             const CycleCosts &costs, int fine_buckets = 64);
    ~VfsLayer();

    VfsLayer(const VfsLayer &) = delete;
    VfsLayer &operator=(const VfsLayer &) = delete;

    /**
     * Allocate a socket file on core @p c at tick @p t.
     *
     * Charges the mode's cycle and lock costs.
     *
     * @param[out] out The new file.
     * @param conn_id Connection id for span attribution (0 = none,
     *        e.g. listener setup); trace-only, never affects costs.
     * @return The tick at which the allocation completes.
     */
    Tick allocSocketFile(CoreId c, Tick t, void *sock, SocketFile **out,
                         std::uint64_t conn_id = 0);

    /** Destroy a socket file; inverse cost profile of alloc. */
    Tick freeSocketFile(CoreId c, Tick t, SocketFile *file,
                        std::uint64_t conn_id = 0);

    /**
     * Enumerate all live socket files, as /proc/net readers (netstat,
     * lsof) do. Must work in every mode (compatibility requirement).
     */
    std::vector<const SocketFile *> procWalk() const;

    VfsMode mode() const { return mode_; }
    std::uint64_t liveFiles() const { return liveFiles_; }
    std::uint64_t totalAllocs() const { return totalAllocs_; }

  private:
    SimSpinLock &dcacheBucket(std::uint64_t ino);
    SimSpinLock &inodeBucket(std::uint64_t ino);

    /** Slab slot wrapping a SocketFile (file must stay first so a
     *  SocketFile pointer converts back to its slot). */
    struct PoolSlot
    {
        SocketFile file;
        std::uint32_t nextFree = kPoolNone;
        std::uint32_t selfIdx = 0;
        bool live = false;
    };

    static constexpr std::uint32_t kPoolNone = 0xffffffffu;
    static constexpr std::size_t kPoolChunk = 256;

    PoolSlot &slotAt(std::uint32_t idx);

    VfsMode mode_;
    CacheModel &cache_;
    const CycleCosts &costs_;
    Tracer *tracer_;    //!< borrowed from the lock registry; may be null

    SimSpinLock dcacheLock_;    //!< global (2.6.32 mode)
    SimSpinLock inodeLock_;     //!< global (2.6.32 mode)
    std::vector<SimSpinLock> dcacheBuckets_;    //!< 3.13 mode
    std::vector<SimSpinLock> inodeBuckets_;     //!< 3.13 mode

    std::uint64_t nextIno_ = 1;
    std::uint64_t totalAllocs_ = 0;
    std::uint64_t liveFiles_ = 0;

    /** Socket files live in recycled slab chunks, not one heap object
     *  per file: file alloc/free is the per-connection fast path. */
    std::vector<std::unique_ptr<PoolSlot[]>> pool_;
    std::uint32_t poolUsed_ = 0;       //!< slots ever handed out
    std::uint32_t poolFree_ = kPoolNone;
};

} // namespace fsim

#endif // FSIM_VFS_VFS_HH
