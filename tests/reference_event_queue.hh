/**
 * @file
 * The pre-ladder binary-heap event queue, kept verbatim as a test
 * oracle.
 *
 * This is the std::priority_queue implementation the simulator shipped
 * with through PR 6, frozen here so the differential property test
 * (test_event_queue_diff.cc) and bench_sim_core can compare the ladder
 * queue against the exact semantics every committed fingerprint was
 * recorded under: absolute ticks, FIFO tie-break by sequence number,
 * runUntil advancing now() to the limit. Do not "improve" it — its
 * value is that it stays dumb and obviously correct.
 */

#ifndef FSIM_TESTS_REFERENCE_EVENT_QUEUE_HH
#define FSIM_TESTS_REFERENCE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace fsim
{

/** Minimum-time-first event queue: the original binary-heap core. */
class ReferenceEventQueue
{
  public:
    using Handler = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Handler fn)
    {
        if (when < now_)
            when = now_;   // release-mode clamp, mirrored from EventQueue
        heap_.push(Item{when, nextSeq_++, std::move(fn)});
    }

    void
    scheduleIn(Tick delta, Handler fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        Item &top = const_cast<Item &>(heap_.top());
        Tick when = top.when;
        Handler fn = std::move(top.fn);
        heap_.pop();
        now_ = when;
        ++executed_;
        fn();
        return true;
    }

    void
    runUntil(Tick limit)
    {
        while (!heap_.empty() && heap_.top().when <= limit)
            runOne();
        if (now_ < limit)
            now_ = limit;
    }

    std::uint64_t
    runAll()
    {
        std::uint64_t n = 0;
        while (runOne())
            ++n;
        return n;
    }

    std::size_t pending() const { return heap_.size(); }
    std::uint64_t executed() const { return executed_; }

  private:
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        Handler fn;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace fsim

#endif // FSIM_TESTS_REFERENCE_EVENT_QUEUE_HH
