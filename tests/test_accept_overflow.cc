/**
 * @file
 * Accept-queue overflow / backlog-drop coverage: SYN floods against
 * tiny backlogs on every kernel flavor, conservation across the drop
 * path, and a full-testbed overload where the accept-queue-bounds
 * invariant must hold while overflows are happening.
 */

#include <gtest/gtest.h>

#include <memory>

#include "app/machine.hh"
#include "check/invariants.hh"
#include "harness/experiment.hh"

namespace fsim
{
namespace
{

constexpr IpAddr kClientIp = 0xac100001;

struct OverflowFixture : public ::testing::Test
{
    EventQueue eq;
    Wire wire{eq, ticksFromUsec(10)};
    std::unique_ptr<Machine> m;
    std::uint64_t rstSeen = 0;
    std::uint64_t synAckSeen = 0;

    void
    build(const KernelConfig &kc, int cores = 2)
    {
        MachineConfig mc;
        mc.cores = cores;
        mc.kernel = kc;
        mc.listenIps = 1;
        m = std::make_unique<Machine>(eq, wire, mc);
        wire.attachRange(kClientIp, kClientIp + 0xffff,
                         [this](const Packet &p) {
                             if (p.has(kRst))
                                 ++rstSeen;
                             if (p.has(kSyn) && p.has(kAck))
                                 ++synAckSeen;
                         });
    }

    IpAddr srv() const { return m->addrs()[0]; }

    /** Complete @p n handshakes without ever calling accept(). */
    void
    flood(int n, Port first = 20000)
    {
        for (int i = 0; i < n; ++i) {
            FiveTuple t{kClientIp, srv(),
                        static_cast<Port>(first + i), 80};
            Packet syn;
            syn.tuple = t;
            syn.flags = kSyn;
            wire.transmit(syn, eq.now());
            eq.runAll();
            Packet ack;
            ack.tuple = t;
            ack.flags = kAck;
            wire.transmit(ack, eq.now());
            eq.runAll();
        }
    }
};

TEST_F(OverflowFixture, OverflowDestroysSocketAndConserves)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);
    Socket *lsock = k.sockFromFd(proc, lfd);
    lsock->backlog = 3;

    flood(10);
    const KernelStats &ks = k.stats();
    EXPECT_EQ(ks.acceptOverflows, 7u);
    EXPECT_EQ(ks.rstSent, 7u);
    EXPECT_EQ(rstSeen, 7u);
    EXPECT_EQ(lsock->acceptQueue.size(), 3u);
    // Every overflowed TCB was destroyed, none leaked.
    EXPECT_EQ(ks.socketsCreated, ks.socketsDestroyed + k.liveSockets());
    // Queue never exceeds the bound mid-flood either.
    EXPECT_LE(lsock->acceptQueue.size(), lsock->backlog);
}

TEST_F(OverflowFixture, QueuedConnectionsStillAcceptAfterOverflow)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);
    k.sockFromFd(proc, lfd)->backlog = 2;

    flood(5);
    // The two queued survivors are intact and accept()-able.
    auto r1 = k.accept(proc, eq.now(), lfd);
    auto r2 = k.accept(proc, eq.now(), lfd);
    auto r3 = k.accept(proc, eq.now(), lfd);
    ASSERT_NE(r1.sock, nullptr);
    ASSERT_NE(r2.sock, nullptr);
    EXPECT_EQ(r3.sock, nullptr);
    EXPECT_EQ(r1.sock->state, TcpState::kEstablished);
    EXPECT_EQ(k.stats().acceptedConns, 2u);
}

TEST_F(OverflowFixture, ReuseportCloneOverflowsIndependently)
{
    build(KernelConfig::linux313(), 2);
    KernelStack &k = m->kernel();
    int p0 = k.addProcess(0);
    int p1 = k.addProcess(1);
    int l0 = k.listen(p0, srv(), 80);
    int l1 = k.listen(p1, srv(), 80);
    k.sockFromFd(p0, l0)->backlog = 1;
    k.sockFromFd(p1, l1)->backlog = 1;

    flood(40);
    const KernelStats &ks = k.stats();
    // Both clones saturate at one queued connection; the rest bounce.
    EXPECT_EQ(k.sockFromFd(p0, l0)->acceptQueue.size() +
                  k.sockFromFd(p1, l1)->acceptQueue.size(),
              2u);
    EXPECT_EQ(ks.acceptOverflows, 38u);
    EXPECT_EQ(ks.socketsCreated, ks.socketsDestroyed + k.liveSockets());
}

TEST_F(OverflowFixture, FastsocketLocalListenOverflows)
{
    build(KernelConfig::fastsocket(), 2);
    KernelStack &k = m->kernel();
    int p0 = k.addProcess(0);
    int p1 = k.addProcess(1);
    int l0 = k.listen(p0, srv(), 80);
    int l1 = k.listen(p1, srv(), 80);
    k.localListen(p0, srv(), 80);
    k.localListen(p1, srv(), 80);
    // Shrink every listen socket (global + local clones).
    for (const Socket *s : k.allSockets())
        if (s->kind == SockKind::kListen)
            const_cast<Socket *>(s)->backlog = 2;

    flood(30);
    const KernelStats &ks = k.stats();
    EXPECT_GT(ks.acceptOverflows, 0u);
    EXPECT_EQ(ks.socketsCreated, ks.socketsDestroyed + k.liveSockets());
    for (const Socket *s : k.allSockets()) {
        if (s->kind == SockKind::kListen) {
            EXPECT_LE(s->acceptQueue.size(), s->backlog);
        }
    }
    (void)l0;
    (void)l1;
}

TEST(TestbedOverflow, TinyBacklogUnderLoadKeepsInvariants)
{
    // Full closed-loop testbed with an absurdly small somaxconn: the
    // server sheds load via RSTs, clients see failures, yet every
    // conservation invariant (including accept-queue-bounds, evaluated
    // periodically mid-storm) must hold.
    ExperimentConfig cfg;
    cfg.machine.cores = 2;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.02;
    cfg.concurrencyPerCore = 100;
    cfg.listenBacklog = 4;
    cfg.checkLevel = CheckLevel::kPeriodic;
    cfg.checkIntervalSec = 0.002;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_TRUE(r.invariants.ok()) << r.invariants.summary();
    EXPECT_GT(r.clientFailures, 0u) << "backlog 4 must shed load";
}

TEST(TestbedOverflow, BacklogOverrideIsApplied)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 1;
    cfg.concurrencyPerCore = 10;
    cfg.listenBacklog = 7;
    Testbed bed(cfg);
    for (const Socket *s : bed.machine().kernel().allSockets()) {
        if (s->kind == SockKind::kListen) {
            EXPECT_EQ(s->backlog, 7u);
        }
    }
}

} // anonymous namespace
} // namespace fsim
