/**
 * @file
 * Allocation audit: the event/packet/timer hot path must not touch the
 * heap in steady state.
 *
 * This binary overrides global operator new/delete to count every
 * allocation while an AllocAuditScope is armed (the counters live in
 * sim/alloc_audit). Two layers of contract:
 *
 *  1. The raw simulator substrate — EventQueue scheduling/dispatch,
 *     TimerWheel arm/mod/cancel/fire, CpuModel task posting — must make
 *     ZERO allocations once its slabs and rings are warm. This is the
 *     inline-capture budget (EventFn 56 B, Task 88 B, timer callbacks
 *     32/64 B) plus slab recycling doing their job.
 *
 *  2. A steady-state --notrace nginx experiment (full kernel + app +
 *     load) must likewise run allocation-free between checkpoints once
 *     warmed up: connection churn recycles TCB slabs, timer nodes,
 *     event nodes and ring capacity instead of allocating.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <new>

#include "harness/experiment.hh"
#include "sim/alloc_audit.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "timerwheel/timer_wheel.hh"

// ---------------------------------------------------------------------
// Global counting allocator hook. Forwarding to malloc keeps ASan's
// interception intact (it wraps malloc), so the audit composes with the
// sanitizer jobs.
// ---------------------------------------------------------------------

namespace
{

// Failure diagnostic: histogram of audited allocation sizes, dumped
// only when a test is about to fail. Sizes identify structures (8 B =
// a pointer vector's first growth, 2^n = vector doubling, etc.).
constexpr std::size_t kHistCap = 512;
std::size_t g_histSize[kHistCap];
std::uint64_t g_histCount[kHistCap];
std::size_t g_histUsed = 0;

void
recordSize(std::size_t n)
{
    for (std::size_t i = 0; i < g_histUsed; ++i)
        if (g_histSize[i] == n) { ++g_histCount[i]; return; }
    if (g_histUsed < kHistCap) {
        g_histSize[g_histUsed] = n;
        g_histCount[g_histUsed] = 1;
        ++g_histUsed;
    }
}

void
dumpHist(const char *tag)
{
    fprintf(stderr, "=== alloc histogram (%s) ===\n", tag);
    for (std::size_t i = 0; i < g_histUsed; ++i)
        fprintf(stderr, "  size %zu x %llu\n", g_histSize[i],
                (unsigned long long)g_histCount[i]);
    g_histUsed = 0;
}

void *
auditedAlloc(std::size_t n)
{
    fsim::AllocAudit::noteHooked();
    if (fsim::AllocAudit::armed())
        recordSize(n);
    fsim::AllocAudit::noteAlloc(n);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t n)
{
    return auditedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return auditedAlloc(n);
}

void
operator delete(void *p) noexcept
{
    fsim::AllocAudit::noteFree();
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    fsim::AllocAudit::noteFree();
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    fsim::AllocAudit::noteFree();
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    fsim::AllocAudit::noteFree();
    std::free(p);
}

namespace fsim
{
namespace
{

TEST(AllocAudit, HookIsLive)
{
    AllocAuditScope scope;
    delete new int(7);
    ASSERT_TRUE(AllocAudit::hooked());
    EXPECT_GE(AllocAudit::allocs(), 1u);
    EXPECT_GE(AllocAudit::frees(), 1u);
}

TEST(AllocAudit, EventQueueSteadyStateIsAllocationFree)
{
    EventQueue eq;
    Rng rng(42);
    // Warm the slab and ladder: pending population comparable to the
    // steady state we then audit.
    int live = 0;
    for (int i = 0; i < 20000; ++i) {
        eq.schedule(eq.now() + rng.range(500'000),
                    [&live] { --live; });
        ++live;
        if (i % 3 == 0)
            eq.runOne();
    }
    // Unaudited steady-churn phase: identical op mix to the audited
    // loop below, long enough for every rung/bucket vector the churn
    // can touch to reach its sticky high-water capacity. Rung depth
    // and staged-bottom width are max-of-draws statistics, so (like
    // the timer-wheel test below) the warm phase runs several times
    // longer than the audited one to discover the rare deep cases.
    for (int i = 0; i < 800'000; ++i) {
        eq.schedule(eq.now() + 1 + rng.range(500'000), [&live] {
            --live;
        });
        ++live;
        eq.runOne();
    }
    // Audit: schedule/dispatch churn at constant population.
    std::uint64_t audited;
    {
        AllocAuditScope scope;
        for (int i = 0; i < 200'000; ++i) {
            eq.schedule(eq.now() + 1 + rng.range(500'000), [&live] {
                --live;
            });
            ++live;
            eq.runOne();
        }
        audited = AllocAudit::disarm();
    }
    if (audited) dumpHist("event queue");
    EXPECT_EQ(audited, 0u)
        << "event schedule/dispatch hit the allocator in steady state";
    eq.runAll();
    EXPECT_EQ(live, 0);
}

TEST(AllocAudit, TimerWheelSteadyStateIsAllocationFree)
{
    TimerWheel tw;
    Rng rng(7);
    int fired = 0;
    std::vector<TimerWheel::TimerId> ids;
    ids.reserve(4096);
    for (int i = 0; i < 4096; ++i)
        ids.push_back(
            tw.add(1 + rng.range(5000), [&fired] { ++fired; }));
    tw.advance(2500);   // half the population fires; slab has churn
    // Unaudited steady-churn phase: same op mix as the audited loop,
    // so every wheel slot the churn's horizon band can reach grows to
    // its sticky high-water capacity first. Slot occupancy peaks are a
    // max-of-draws statistic, so the warm phase runs several times
    // longer than the audited one to discover them all.
    for (int i = 0; i < 600'000; ++i) {
        TimerWheel::TimerId &id = ids[rng.range(ids.size())];
        if (!tw.modify(id, tw.currentJiffy() + 1 + rng.range(5000)))
            id = tw.add(tw.currentJiffy() + 1 + rng.range(5000),
                        [&fired] { ++fired; });
        if (i % 16 == 0)
            tw.advance(tw.currentJiffy() + 1);
    }
    std::uint64_t audited;
    {
        AllocAuditScope scope;
        for (int i = 0; i < 100'000; ++i) {
            // mod/cancel/re-add churn, like keepalive timers under
            // per-segment mod_timer load.
            TimerWheel::TimerId &id = ids[rng.range(ids.size())];
            if (!tw.modify(id, tw.currentJiffy() + 1 + rng.range(5000)))
                id = tw.add(tw.currentJiffy() + 1 + rng.range(5000),
                            [&fired] { ++fired; });
            if (i % 16 == 0)
                tw.advance(tw.currentJiffy() + 1);
        }
        audited = AllocAudit::disarm();
    }
    if (audited) dumpHist("timer wheel");
    EXPECT_EQ(audited, 0u)
        << "timer arm/mod/fire hit the allocator in steady state";
}

TEST(AllocAudit, NotraceNginxSteadyStateIsAllocationFree)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.seed = 1234;
    cfg.machine.traceEnabled = false;   // the --notrace contract
    cfg.checkLevel = CheckLevel::kOff;
    cfg.warmupSec = 0.0;
    cfg.measureSec = 0.0;
    cfg.concurrencyPerCore = 50;

    Testbed bed(cfg);
    bed.startLoad();
    // Warm up well past connection churn onset: slabs, rings, table
    // capacity and ladder epochs all reach their high-water marks.
    // 0.3 s covers a full tv1 timer-wheel revolution (256 jiffies) and
    // many TIME_WAIT periods (20 jiffies), so every sticky capacity
    // the steady state can touch has been discovered.
    bed.runUntilChecked(ticksFromSeconds(0.3));

    const std::uint64_t servedBefore = bed.load().completed();
    std::uint64_t audited;
    {
        AllocAuditScope scope;
        bed.runUntilChecked(ticksFromSeconds(0.5));
        audited = AllocAudit::disarm();
    }
    // The window must have done real work (thousands of connections)...
    EXPECT_GT(bed.load().completed(), servedBefore + 500u);
    // ...without a single heap allocation: every per-connection object
    // on the packet/timer/event path is recycled.
    if (audited) dumpHist("nginx");
    EXPECT_EQ(audited, 0u)
        << "steady-state nginx allocated on the hot path; see "
           "sim/event_fn.hh capture budgets and the slab free lists";
}

} // namespace
} // namespace fsim
