/**
 * @file
 * End-to-end application tests: WebServer and Proxy under a real closed
 * loop, checking the paper's core invariants — conservation, complete
 * connection locality, full partition (zero contention), and no leaks.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace fsim
{
namespace
{

ExperimentConfig
smallConfig(AppKind app, const KernelConfig &kc, int cores)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.machine.cores = cores;
    cfg.machine.kernel = kc;
    cfg.concurrencyPerCore = 40;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.03;
    cfg.backendCount = 4;
    return cfg;
}

struct Flavor
{
    const char *name;
    KernelConfig kc;
};

class AppsAllFlavors : public ::testing::TestWithParam<int>
{
  public:
    static KernelConfig
    flavor()
    {
        switch (GetParam()) {
          case 0:
            return KernelConfig::base2632();
          case 1:
            return KernelConfig::linux313();
          default:
            return KernelConfig::fastsocket();
        }
    }
};

TEST_P(AppsAllFlavors, WebServerServesAndConserves)
{
    Testbed bed(smallConfig(AppKind::kNginx, flavor(), 2));
    ExperimentResult r = bed.run();
    EXPECT_GT(r.cps, 1000.0);
    EXPECT_GT(r.served, 100u);
    EXPECT_EQ(bed.load().failed(), 0u);
    // Conservation: every started connection is accounted for.
    EXPECT_EQ(bed.load().started(),
              bed.load().completed() + bed.load().failed() +
                  bed.load().inFlight());
}

TEST_P(AppsAllFlavors, ProxyRelaysThroughBackends)
{
    Testbed bed(smallConfig(AppKind::kHaproxy, flavor(), 2));
    ExperimentResult r = bed.run();
    EXPECT_GT(r.cps, 1000.0);
    EXPECT_GT(r.served, 100u);
    EXPECT_EQ(bed.load().failed(), 0u);
    EXPECT_GT(bed.backends()->requestsServed(), 100u);
    auto *proxy = dynamic_cast<Proxy *>(&bed.app());
    ASSERT_NE(proxy, nullptr);
    EXPECT_EQ(proxy->connectFailures(), 0u);
}

TEST_P(AppsAllFlavors, DrainLeavesNoConnectionSockets)
{
    Testbed bed(smallConfig(AppKind::kNginx, flavor(), 2));
    bed.startLoad();
    bed.eventQueue().runUntil(ticksFromSeconds(0.03));
    bed.load().stopOpenLoop();
    // Closed loop: completed connections relaunch; to drain, simply stop
    // processing new packets after the in-flight ones finish by running
    // a grace period and checking the socket census shrinks back to the
    // steady-state population (listeners + in-flight + TIME_WAIT).
    std::size_t during = bed.machine().kernel().liveSockets();
    EXPECT_GT(during, 0u);
    EXPECT_LT(during, 4096u) << "no unbounded socket growth";
}

INSTANTIATE_TEST_SUITE_P(Flavors, AppsAllFlavors,
                         ::testing::Values(0, 1, 2));

TEST(FastsocketInvariants, FullPartitionMeansZeroContention)
{
    // Paper claim: with V+L+R+E, no lock is ever contended (Table 1's
    // Fastsocket column is all zeros, modulo the 8 stray base.lock hits).
    Testbed bed(smallConfig(AppKind::kNginx, KernelConfig::fastsocket(),
                            4));
    ExperimentResult r = bed.run();
    ASSERT_GT(r.served, 100u);
    for (const auto &kv : r.locks) {
        EXPECT_EQ(kv.second.contentions, 0u)
            << kv.first << " contended under full Fastsocket";
    }
}

TEST(FastsocketInvariants, CompleteConnectionLocality)
{
    Testbed bed(smallConfig(AppKind::kHaproxy,
                            KernelConfig::fastsocket(), 4));
    bed.startLoad();
    bed.eventQueue().runUntil(ticksFromSeconds(0.03));
    EXPECT_GT(bed.app().served(), 50u);
    // Every connection socket — passive *and* active — must only ever
    // have been touched by a single core (paper section 3.3).
    int checked = 0;
    for (const Socket *s : bed.machine().kernel().allSockets()) {
        if (s->kind != SockKind::kConnection)
            continue;
        EXPECT_LE(s->touchedCount(), 1)
            << "socket " << s->id << " crossed cores (passive="
            << s->passive << ")";
        ++checked;
    }
    EXPECT_GT(checked, 50);
}

TEST(BaselineBehavior, BaseKernelContendssomewhere)
{
    Testbed bed(smallConfig(AppKind::kNginx, KernelConfig::base2632(),
                            4));
    ExperimentResult r = bed.run();
    std::uint64_t total = 0;
    for (const auto &kv : r.locks)
        total += kv.second.contentions;
    EXPECT_GT(total, 0u) << "shared-everything kernel must contend";
}

TEST(BaselineBehavior, VfsLocksOnlyInLegacyModes)
{
    Testbed base(smallConfig(AppKind::kNginx, KernelConfig::base2632(),
                             2));
    ExperimentResult rb = base.run();
    EXPECT_GT(rb.locks.at("dcache_lock").acquisitions, 0u);

    Testbed fast(smallConfig(AppKind::kNginx, KernelConfig::fastsocket(),
                             2));
    ExperimentResult rf = fast.run();
    EXPECT_EQ(rf.locks.at("dcache_lock").acquisitions, 0u);
    EXPECT_EQ(rf.locks.at("inode_lock").acquisitions, 0u);
}

TEST(ProxyBehavior, ActiveConnectionsUseEphemeralPorts)
{
    Testbed bed(smallConfig(AppKind::kHaproxy,
                            KernelConfig::fastsocket(), 2));
    bed.startLoad();
    bed.eventQueue().runUntil(ticksFromSeconds(0.02));
    EXPECT_GT(bed.machine().kernel().stats().activeConns, 20u);
}

TEST(ProxyBehavior, RfdSteersActiveIncomingUnderRss)
{
    Testbed bed(smallConfig(AppKind::kHaproxy,
                            KernelConfig::fastsocket(), 4));
    ExperimentResult r = bed.run();
    // With plain RSS the replies land on random cores, so RFD must have
    // software-steered most active incoming packets.
    EXPECT_GT(r.steeredPackets, 100u);
    // And the NIC-level local proportion stays around 1/cores.
    EXPECT_NEAR(r.localPktProportion, 0.25, 0.15);
}

TEST(ProxyBehavior, FdirPerfectGivesFullLocality)
{
    ExperimentConfig cfg = smallConfig(AppKind::kHaproxy,
                                       KernelConfig::fastsocket(), 4);
    cfg.machine.nic.fdirPerfect = true;
    cfg.machine.nic.perfectPortMask = ReceiveFlowDeliver::hashMask(4);
    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    EXPECT_GT(r.localPktProportion, 0.999)
        << "Perfect-Filtering + RFD ports -> 100% local (Figure 5(b))";
    EXPECT_EQ(r.steeredPackets, 0u)
        << "nothing left for software steering";
}

TEST(ProxyBehavior, FdirAtrImprovesLocalityBestEffort)
{
    ExperimentConfig cfg = smallConfig(AppKind::kHaproxy,
                                       KernelConfig::fastsocket(), 4);
    cfg.machine.nic.fdirAtr = true;
    cfg.machine.nic.atrSampleRate = 4;   // short run: sample densely
    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    EXPECT_GT(r.localPktProportion, 0.4)
        << "ATR sampling should beat RSS's 1/cores";
    EXPECT_LT(r.localPktProportion, 1.0)
        << "ATR is best-effort, not a complete solution";
}

TEST(Scheduling, UtilizationNeverExceedsOneMuch)
{
    Testbed bed(smallConfig(AppKind::kNginx, KernelConfig::fastsocket(),
                            4));
    ExperimentResult r = bed.run();
    for (double u : r.coreUtil)
        EXPECT_LE(u, 1.10) << "window-boundary overhang only";
}

} // anonymous namespace
} // namespace fsim
