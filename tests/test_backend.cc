/**
 * @file
 * Unit tests for the ideal backend pool's wire protocol.
 */

#include <gtest/gtest.h>

#include <vector>

#include "app/backend.hh"

namespace fsim
{
namespace
{

struct BackendFixture : public ::testing::Test
{
    EventQueue eq;
    Wire wire{eq, ticksFromUsec(10)};
    BackendPool pool{eq, wire, 100, 110, 64, ticksFromUsec(100)};
    std::vector<Packet> rx;
    std::vector<Tick> rxAt;

    void
    SetUp() override
    {
        wire.attach(7, [this](const Packet &p) {
            rx.push_back(p);
            rxAt.push_back(eq.now());
        });
    }

    void
    send(std::uint8_t flags, std::uint32_t payload = 0, IpAddr dst = 100)
    {
        Packet p;
        p.tuple = FiveTuple{7, dst, 40001, 80};
        p.flags = flags;
        p.payload = payload;
        wire.transmit(p, eq.now());
    }
};

TEST_F(BackendFixture, SynGetsSynAck)
{
    send(kSyn);
    eq.runAll();
    ASSERT_EQ(rx.size(), 1u);
    EXPECT_TRUE(rx[0].has(kSyn));
    EXPECT_TRUE(rx[0].has(kAck));
    EXPECT_EQ(rx[0].tuple.saddr, 100u);
    EXPECT_EQ(rx[0].tuple.daddr, 7u);
    EXPECT_EQ(rx[0].tuple.sport, 80);
    EXPECT_EQ(rx[0].tuple.dport, 40001);
}

TEST_F(BackendFixture, RequestGetsResponseWithFinAfterServiceDelay)
{
    send(kAck | kPsh, 600);
    Tick sent_at = eq.now();
    eq.runAll();
    ASSERT_EQ(rx.size(), 1u);
    EXPECT_EQ(rx[0].payload, 64u);
    EXPECT_TRUE(rx[0].has(kFin)) << "backend closes after the reply";
    // one-way delay out + service + one-way delay back
    EXPECT_GE(rxAt[0], sent_at + 2 * ticksFromUsec(10) +
                           ticksFromUsec(100));
    EXPECT_EQ(pool.requestsServed(), 1u);
}

TEST_F(BackendFixture, FinGetsAck)
{
    send(kFin | kAck);
    eq.runAll();
    ASSERT_EQ(rx.size(), 1u);
    EXPECT_TRUE(rx[0].has(kAck));
    EXPECT_FALSE(rx[0].has(kFin));
    EXPECT_EQ(rx[0].payload, 0u);
}

TEST_F(BackendFixture, BareAckIgnored)
{
    send(kAck);
    eq.runAll();
    EXPECT_TRUE(rx.empty());
}

TEST_F(BackendFixture, WholeRangeAnswers)
{
    send(kSyn, 0, 100);
    send(kSyn, 0, 105);
    send(kSyn, 0, 110);
    eq.runAll();
    EXPECT_EQ(rx.size(), 3u);
}

TEST_F(BackendFixture, FullExchangeSequence)
{
    // SYN -> SYNACK -> REQ -> RESP+FIN -> FIN -> ACK: the exact script a
    // proxy's active connection runs against the pool.
    send(kSyn);
    eq.runAll();
    send(kAck | kPsh, 600);
    eq.runAll();
    send(kFin | kAck);
    eq.runAll();
    ASSERT_EQ(rx.size(), 3u);
    EXPECT_TRUE(rx[0].has(kSyn));
    EXPECT_TRUE(rx[1].has(kFin));
    EXPECT_GT(rx[1].payload, 0u);
    EXPECT_TRUE(rx[2].has(kAck));
    EXPECT_FALSE(rx[2].has(kFin));
}

} // anonymous namespace
} // namespace fsim
