#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py.

Focus: the NaN-poisoning rule. float('nan') passes an
isinstance(v, (int, float)) check and every comparison against it is
False, so before the as_float() guard a candidate whose metric went
NaN (or +/-inf) sailed through the regression gate as a silent pass.
These tests pin the fixed behavior: a non-finite candidate value
inside a present block is an explicit MISSING regression (exit 1),
and a non-finite *baseline* value downgrades to a note, exactly like
an absent metric.

Usage: test_bench_compare.py <path-to-bench_compare.py>
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

TOOL = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
    os.path.dirname(__file__), os.pardir, "tools", "bench_compare.py")

FAILURES = []


def base_doc():
    return {
        "schema_version": 9,
        "bench": "unit",
        "rows": [{
            "label": "row/a",
            "metrics": {"cps": 100.0, "rps": 200.0, "served": 1000},
            "overload": {"latency_samples": 0},
            "conn": {"tcb_live_peak": 0},
            "sim_core": {},
            "fleet": {
                "enabled": True,
                "request_success_ratio": 0.99,
                "flows_active_peak": 50,
                "incidents_detected": 3,
                "incidents_recovered": 3,
                "mttd_ms_mean": 4.0,
                "mttr_ms_mean": 120.0,
            },
        }],
    }


def run_compare(base, cand, *flags):
    with tempfile.TemporaryDirectory() as d:
        bp = os.path.join(d, "base.json")
        cp = os.path.join(d, "cand.json")
        with open(bp, "w") as f:
            json.dump(base, f)   # allow_nan=True is the default:
        with open(cp, "w") as f:  # NaN round-trips through json
            json.dump(cand, f)
        proc = subprocess.run(
            [sys.executable, TOOL, bp, cp, *flags],
            capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check(name, cond, detail=""):
    if cond:
        print(f"ok   {name}")
    else:
        print(f"FAIL {name} {detail}")
        FAILURES.append(name)


def main():
    base = base_doc()

    rc, out = run_compare(base, copy.deepcopy(base))
    check("identical docs pass", rc == 0, out)

    cand = copy.deepcopy(base)
    cand["rows"][0]["metrics"]["cps"] = float("nan")
    rc, out = run_compare(base, cand)
    check("NaN candidate cps is a regression", rc == 1, out)
    check("NaN candidate cps reported as MISSING", "MISSING" in out, out)

    cand = copy.deepcopy(base)
    cand["rows"][0]["metrics"]["cps"] = float("inf")
    rc, out = run_compare(base, cand)
    check("inf candidate cps is a regression", rc == 1, out)

    cand = copy.deepcopy(base)
    cand["rows"][0]["fleet"]["mttr_ms_mean"] = float("nan")
    rc, out = run_compare(base, cand)
    check("NaN candidate mttr_ms_mean is a regression", rc == 1, out)
    check("NaN mttr reported as MISSING",
          "mttr_ms_mean" in out and "MISSING" in out, out)

    cand = copy.deepcopy(base)
    del cand["rows"][0]["metrics"]["cps"]
    rc, out = run_compare(base, cand)
    check("absent candidate cps is a regression", rc == 1, out)

    # A poisoned BASELINE downgrades to a note (candidate gained a
    # metric the baseline never measured) — it must not fail the gate.
    poisoned = copy.deepcopy(base)
    poisoned["rows"][0]["metrics"]["cps"] = float("nan")
    rc, out = run_compare(poisoned, copy.deepcopy(base))
    check("NaN baseline cps is a note, not a regression", rc == 0, out)

    # Real regressions still fire through the numeric path.
    cand = copy.deepcopy(base)
    cand["rows"][0]["metrics"]["cps"] = 50.0
    rc, out = run_compare(base, cand)
    check("true cps drop is a regression", rc == 1, out)

    cand = copy.deepcopy(base)
    cand["rows"][0]["fleet"]["mttr_ms_mean"] = 500.0
    rc, out = run_compare(base, cand)
    check("mttr rise is a regression (lower is better)", rc == 1, out)
    check("mttr regression names its gate direction",
          "lower is better" in out, out)
    check("mttr regression reports gate-relative percentage as worse",
          "worse" in out, out)

    cand = copy.deepcopy(base)
    cand["rows"][0]["metrics"]["cps"] = 50.0
    rc, out = run_compare(base, cand)
    check("cps regression names its gate direction",
          "higher is better" in out, out)

    # v10 time series: the final sampled value compares by name, with
    # the direction chosen by the ts:/ts-: prefix, and a series the
    # candidate stopped sampling is an explicit MISSING regression.
    ts_base = copy.deepcopy(base)
    ts_base["rows"][0]["timeseries"] = {
        "enabled": True, "sample_period": 1000,
        "series": [{"name": "m0.time_wait", "kind": "gauge",
                    "points": [[1000, 50], [2000, 60]]}]}
    ts_cand = copy.deepcopy(ts_base)
    ts_cand["rows"][0]["timeseries"]["series"][0]["points"] = \
        [[1000, 50], [2000, 90]]
    rc, out = run_compare(ts_base, ts_cand, "--metrics=ts-:m0.time_wait")
    check("lower-better time-series rise is a regression",
          rc == 1 and "lower is better" in out, out)
    rc, out = run_compare(ts_base, ts_cand, "--metrics=ts:m0.time_wait")
    check("same rise improves under the higher-better prefix",
          rc == 0 and "IMPROVED" in out, out)
    ts_cand = copy.deepcopy(ts_base)
    ts_cand["rows"][0]["timeseries"]["series"] = []
    rc, out = run_compare(ts_base, ts_cand, "--metrics=ts-:m0.time_wait")
    check("missing time-series metric is an explicit regression",
          rc == 1 and "MISSING" in out, out)

    # Gating: mean over zero incidents is not a datum on either side.
    both = copy.deepcopy(base)
    both["rows"][0]["fleet"]["incidents_recovered"] = 0
    both["rows"][0]["fleet"]["mttr_ms_mean"] = 0.0
    rc, out = run_compare(both, copy.deepcopy(both))
    check("zero-incident mttr is skipped", rc == 0, out)

    if FAILURES:
        print(f"{len(FAILURES)} failure(s): {FAILURES}")
        return 1
    print("all bench_compare unit tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
