/**
 * @file
 * Unit tests for the ownership-based cache/coherence model.
 */

#include <gtest/gtest.h>

#include "cpu/cache_model.hh"

namespace fsim
{
namespace
{

TEST(CacheModel, ColdTouchIsCheapMiss)
{
    CacheModel cm(4, 400);
    auto obj = cm.newObject();
    EXPECT_EQ(cm.access(0, obj), 100u);   // missPenalty / 4
    EXPECT_EQ(cm.misses(0), 1u);
    EXPECT_EQ(cm.accesses(0), 1u);
}

TEST(CacheModel, LocalHitIsFree)
{
    CacheModel cm(4, 400);
    auto obj = cm.newObject();
    cm.access(0, obj);
    EXPECT_EQ(cm.access(0, obj), 0u);
    EXPECT_EQ(cm.misses(0), 1u);
    EXPECT_EQ(cm.accesses(0), 2u);
}

TEST(CacheModel, RemoteWriteMigratesOwnership)
{
    CacheModel cm(4, 400);
    auto obj = cm.newObject();
    cm.access(0, obj, true);
    EXPECT_EQ(cm.access(1, obj, true), 400u);
    // Now owned by core 1.
    EXPECT_EQ(cm.access(1, obj, true), 0u);
    EXPECT_EQ(cm.access(0, obj, true), 400u);
}

TEST(CacheModel, RemoteReadDoesNotMigrate)
{
    CacheModel cm(4, 400);
    auto obj = cm.newObject();
    cm.access(0, obj, true);
    EXPECT_EQ(cm.access(1, obj, false), 400u);
    // Still owned by core 0: another read from core 1 misses again.
    EXPECT_EQ(cm.access(1, obj, false), 400u);
    EXPECT_EQ(cm.access(0, obj, true), 0u);
}

TEST(CacheModel, NumaCrossNodeCostsMore)
{
    CacheModel cm(24, 400, /*node_size=*/12, /*remote=*/1000);
    auto obj = cm.newObject();
    cm.access(0, obj, true);
    EXPECT_EQ(cm.access(5, obj, true), 400u);     // same node
    EXPECT_EQ(cm.access(13, obj, true), 1000u);   // cross socket
    EXPECT_EQ(cm.access(23, obj, true), 400u);    // 13 and 23 share node 1
    EXPECT_EQ(cm.access(23, obj, true), 0u);      // now local
}

TEST(CacheModel, NodeMapping)
{
    CacheModel cm(24, 400, 12, 1000);
    EXPECT_EQ(cm.node(0), 0);
    EXPECT_EQ(cm.node(11), 0);
    EXPECT_EQ(cm.node(12), 1);
    EXPECT_EQ(cm.node(23), 1);
    CacheModel uma(24, 400);
    EXPECT_EQ(uma.node(23), 0);
}

TEST(CacheModel, MultiLineAccessScalesPenaltyAndCounts)
{
    CacheModel cm(4, 400);
    auto obj = cm.newObject();
    cm.access(0, obj, true);
    EXPECT_EQ(cm.access(1, obj, true, 3), 1200u);
    EXPECT_EQ(cm.misses(1), 3u);
    EXPECT_EQ(cm.accesses(1), 3u);
}

TEST(CacheModel, FreeObjectRecyclesIds)
{
    CacheModel cm(2, 400);
    auto a = cm.newObject();
    cm.access(0, a, true);
    cm.freeObject(a);
    auto b = cm.newObject();
    EXPECT_EQ(a, b);
    // Recycled object starts cold again.
    EXPECT_EQ(cm.access(1, b), 100u);
}

TEST(CacheModel, BackgroundMissesAccumulate)
{
    CacheModel cm(2, 400);
    cm.setBackgroundMissRate(0.1);
    cm.noteLocalAccesses(0, 1000);
    EXPECT_EQ(cm.accesses(0), 1000u);
    EXPECT_EQ(cm.misses(0), 100u);
}

TEST(CacheModel, MissRateAggregates)
{
    CacheModel cm(2, 400);
    auto obj = cm.newObject();
    cm.access(0, obj);            // 1 miss
    cm.noteLocalAccesses(0, 9);   // 9 hits (no bg rate)
    EXPECT_DOUBLE_EQ(cm.missRate(), 0.1);
    EXPECT_EQ(cm.totalAccesses(), 10u);
    EXPECT_EQ(cm.totalMisses(), 1u);
}

/** Property: ping-pong between N cores misses every time. */
class CachePingPong : public ::testing::TestWithParam<int>
{
};

TEST_P(CachePingPong, EveryHandoffMisses)
{
    int n = GetParam();
    CacheModel cm(n, 400);
    auto obj = cm.newObject();
    cm.access(0, obj, true);
    std::uint64_t misses_before = cm.totalMisses();
    for (int i = 0; i < 100; ++i)
        cm.access(i % n, obj, true);
    std::uint64_t new_misses = cm.totalMisses() - misses_before;
    // Round-robin writers: with more than one core every access lands on
    // a line another core just owned — except the very first iteration,
    // where core 0 still owns the line from the warm-up access.
    EXPECT_EQ(new_misses, n == 1 ? 0u : 99u);
}

INSTANTIATE_TEST_SUITE_P(Cores, CachePingPong,
                         ::testing::Values(1, 2, 3, 8));

} // anonymous namespace
} // namespace fsim
