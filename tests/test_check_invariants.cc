/**
 * @file
 * Unit tests for src/check: InvariantRegistry mechanics, the Fingerprint
 * hash, and the standard conservation checks run against real testbeds
 * (including one deliberately corrupted to prove violations are caught).
 */

#include <gtest/gtest.h>

#include "check/fingerprint.hh"
#include "check/invariants.hh"
#include "harness/experiment.hh"

namespace fsim
{
namespace
{

TEST(InvariantRegistry, RecordsViolationsWithTickAndDetail)
{
    InvariantRegistry reg;
    reg.add("always-ok", [](Tick, std::string &) { return true; });
    reg.add("always-bad", [](Tick, std::string &why) {
        why = "expected 1 but got 2";
        return false;
    });

    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.runAll(123), 1u);
    EXPECT_EQ(reg.runAll(456), 1u);

    const InvariantReport &r = reg.report();
    EXPECT_EQ(r.checksRun, 4u);
    EXPECT_EQ(r.violationCount, 2u);
    ASSERT_EQ(r.violations.size(), 2u);
    EXPECT_EQ(r.violations[0].name, "always-bad");
    EXPECT_EQ(r.violations[0].detail, "expected 1 but got 2");
    EXPECT_EQ(r.violations[0].tick, 123u);
    EXPECT_EQ(r.violations[1].tick, 456u);
    EXPECT_FALSE(r.ok());

    reg.resetReport();
    EXPECT_TRUE(reg.report().ok());
    EXPECT_EQ(reg.report().checksRun, 0u);
}

TEST(InvariantRegistry, StoredViolationsAreCappedButAllCounted)
{
    InvariantRegistry reg;
    reg.add("bad", [](Tick, std::string &) { return false; });
    for (int i = 0; i < 100; ++i)
        reg.runAll(i);
    EXPECT_EQ(reg.report().violationCount, 100u);
    EXPECT_EQ(reg.report().violations.size(),
              InvariantRegistry::kMaxStored);
}

TEST(InvariantReport, MergeAddsCountsAndKeepsCap)
{
    InvariantRegistry a;
    a.add("a-bad", [](Tick, std::string &) { return false; });
    a.runAll(1);
    InvariantRegistry b;
    b.add("b-bad", [](Tick, std::string &) { return false; });
    b.add("b-ok", [](Tick, std::string &) { return true; });
    b.runAll(2);

    InvariantReport merged = a.report();
    merged.merge(b.report());
    EXPECT_EQ(merged.checksRun, 3u);
    EXPECT_EQ(merged.violationCount, 2u);
    ASSERT_EQ(merged.violations.size(), 2u);
    EXPECT_EQ(merged.violations[1].name, "b-bad");
}

TEST(InvariantReport, SummaryNamesTheFailedChecks)
{
    InvariantRegistry reg;
    reg.add("packet-conservation",
            [](Tick, std::string &) { return false; });
    reg.runAll(0);
    std::string s = reg.report().summary();
    EXPECT_NE(s.find("1 violation"), std::string::npos);
    EXPECT_NE(s.find("packet-conservation"), std::string::npos);
}

TEST(Fingerprint, SensitiveToValueAndOrder)
{
    Fingerprint a;
    a.mix(std::uint64_t{1});
    a.mix(std::uint64_t{2});
    Fingerprint b;
    b.mix(std::uint64_t{2});
    b.mix(std::uint64_t{1});
    Fingerprint c;
    c.mix(std::uint64_t{1});
    c.mix(std::uint64_t{2});
    EXPECT_NE(a.value(), b.value());
    EXPECT_EQ(a.value(), c.value());

    Fingerprint d;
    d.mix(std::uint64_t{1});
    EXPECT_NE(a.value(), d.value());
}

TEST(Fingerprint, MixesDoublesAndStrings)
{
    Fingerprint a;
    a.mix(1.5);
    a.mix(std::string("hello"));
    Fingerprint b;
    b.mix(1.5);
    b.mix(std::string("hellp"));
    EXPECT_NE(a.value(), b.value());

    EXPECT_EQ(a.hex().substr(0, 2), "0x");
    EXPECT_EQ(a.hex().size(), 18u);
}

TEST(StandardInvariants, HoldOnShortNginxRun)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 2;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.02;
    cfg.concurrencyPerCore = 50;
    cfg.checkLevel = CheckLevel::kPeriodic;
    cfg.checkIntervalSec = 0.002;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_TRUE(r.invariants.ok()) << r.invariants.summary();
    EXPECT_GT(r.invariants.checksRun, 6u) << "periodic passes expected";
    EXPECT_NE(r.fingerprint, 0u);
}

TEST(StandardInvariants, HoldOnHaproxyWithLoss)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 2;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.02;
    cfg.concurrencyPerCore = 50;
    cfg.lossRate = 0.02;
    cfg.clientTimeout = ticksFromMsec(50);
    cfg.checkLevel = CheckLevel::kPeriodic;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_TRUE(r.invariants.ok()) << r.invariants.summary();
}

TEST(StandardInvariants, CheckLevelOffRunsNothing)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 1;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.01;
    cfg.concurrencyPerCore = 20;
    cfg.checkLevel = CheckLevel::kOff;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_EQ(r.invariants.checksRun, 0u);
    EXPECT_NE(r.fingerprint, 0u) << "fingerprint is always computed";
}

TEST(StandardInvariants, CorruptedCounterIsDetected)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 1;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.01;
    cfg.concurrencyPerCore = 20;
    Testbed bed(cfg);
    bed.startLoad();
    bed.eventQueue().runUntil(ticksFromSeconds(0.01));

    // Sanity: the live system passes...
    EXPECT_EQ(bed.checks().runAll(bed.eventQueue().now()), 0u)
        << bed.checks().report().summary();

    // ...then fake a lost socket by bumping the created counter behind
    // the registry's back: socket-conservation must notice.
    const_cast<KernelStats &>(bed.machine().kernel().stats())
        .socketsCreated += 1;
    EXPECT_GE(bed.checks().runAll(bed.eventQueue().now()), 1u);
    bool found = false;
    for (const InvariantViolation &v : bed.checks().report().violations)
        if (v.name == "socket-conservation")
            found = true;
    EXPECT_TRUE(found) << bed.checks().report().summary();
}

TEST(QuiesceInvariants, BoundedRunLeaksNothing)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 2;
    cfg.concurrencyPerCore = 25;
    cfg.maxConns = 300;
    Testbed bed(cfg);
    InvariantRegistry quiesce;
    registerQuiesceInvariants(quiesce, bed.machine(), bed.load());

    bed.startLoad();
    bed.eventQueue().runAll();   // bounded: drains to quiescence

    EXPECT_EQ(bed.load().inFlight(), 0u);
    EXPECT_EQ(bed.load().completed(), 300u);
    EXPECT_EQ(quiesce.runAll(bed.eventQueue().now()), 0u)
        << quiesce.report().summary();
    EXPECT_EQ(bed.checks().runAll(bed.eventQueue().now()), 0u)
        << bed.checks().report().summary();
}

} // anonymous namespace
} // namespace fsim
