/**
 * @file
 * Connection-lifetime subsystem tests: the TCB slab arena, the compact
 * TIME_WAIT table, and the full TIME_WAIT lifecycle (linger, reap,
 * SYN-drop, recycle, port relief) on both kernel flavors.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "conn/tcb_arena.hh"
#include "conn/time_wait.hh"
#include "harness/experiment.hh"

namespace fsim
{
namespace
{

// ---------------------------------------------------------------- arena

TEST(TcbArena, CountsCreateDestroyAndPeak)
{
    TcbArena arena;
    Socket *a = arena.create();
    Socket *b = arena.create();
    Socket *c = arena.create();
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(arena.live(), 3u);
    EXPECT_EQ(arena.peakLive(), 3u);
    EXPECT_EQ(arena.totalCreated(), 3u);
    arena.destroy(b);
    EXPECT_EQ(arena.live(), 2u);
    EXPECT_EQ(arena.peakLive(), 3u) << "peak is a high-water mark";
    EXPECT_EQ(arena.totalCreated(), 3u);
}

TEST(TcbArena, RecyclesSlotsLifo)
{
    TcbArena arena;
    Socket *a = arena.create();
    arena.destroy(a);
    Socket *b = arena.create();
    EXPECT_EQ(a, b) << "freed slot must be reused hot (LIFO freelist)";
    EXPECT_EQ(arena.slabCount(), 1u);
}

TEST(TcbArena, GrowsAcrossSlabsAndReportsBytes)
{
    TcbArena arena;
    std::vector<Socket *> socks;
    for (std::size_t i = 0; i < TcbArena::kSlabSize + 1; ++i)
        socks.push_back(arena.create());
    EXPECT_EQ(arena.slabCount(), 2u);
    EXPECT_EQ(arena.slabBytes(),
              2 * TcbArena::kSlabSize * sizeof(Socket));
    EXPECT_GT(arena.bytesPerConn(), 0.0);
    // Near-full occupancy: bytes/conn is close to sizeof(Socket) (the
    // second slab is almost entirely slack, so allow 2x).
    EXPECT_LT(arena.bytesPerConn(), 2.0 * sizeof(Socket));
    for (Socket *s : socks)
        arena.destroy(s);
    EXPECT_EQ(arena.live(), 0u);
    EXPECT_EQ(arena.slabCount(), 2u) << "slabs never shrink";
}

TEST(TcbArena, ForEachVisitsExactlyTheLiveSet)
{
    TcbArena arena;
    std::vector<Socket *> socks;
    for (int i = 0; i < 200; ++i)
        socks.push_back(arena.create());
    std::set<const Socket *> expect(socks.begin(), socks.end());
    for (int i = 0; i < 200; i += 3) {
        expect.erase(socks[i]);
        arena.destroy(socks[i]);
    }
    std::set<const Socket *> seen;
    arena.forEach([&seen](Socket *s) { seen.insert(s); });
    EXPECT_EQ(seen, expect);
    EXPECT_EQ(seen.size(), arena.live());
}

// ------------------------------------------------------ time-wait table

FiveTuple
tuple(std::uint32_t peer, Port peer_port, Port local_port)
{
    FiveTuple t;
    t.saddr = peer;
    t.daddr = 0x0a000001;
    t.sport = peer_port;
    t.dport = local_port;
    return t;
}

TEST(TimeWaitTable, AddFindRemove)
{
    TimeWaitTable tw(1);
    FiveTuple t = tuple(1, 2000, 80);
    tw.add(0, t, /*expires=*/50, /*holds_port=*/true);
    const TimeWaitTable::Entry *e = tw.find(t);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->expires, 50u);
    EXPECT_TRUE(e->holdsPort);
    EXPECT_EQ(tw.size(), 1u);

    TimeWaitTable::Entry out;
    EXPECT_TRUE(tw.remove(t, &out));
    EXPECT_TRUE(out.holdsPort);
    EXPECT_FALSE(tw.remove(t));
    EXPECT_EQ(tw.find(t), nullptr);
    EXPECT_EQ(tw.size(), 0u);
    EXPECT_EQ(tw.peakSize(), 1u);
}

TEST(TimeWaitTable, ReapsInExpiryOrder)
{
    TimeWaitTable tw(1);
    tw.add(0, tuple(1, 2000, 80), 5, false);
    tw.add(0, tuple(2, 2000, 80), 10, false);
    tw.add(0, tuple(3, 2000, 80), 15, false);

    std::vector<TimeWaitTable::Entry> reaped;
    std::uint64_t next = tw.reapExpired(0, /*now_jiffy=*/10, reaped);
    ASSERT_EQ(reaped.size(), 2u);
    EXPECT_EQ(reaped[0].tuple.saddr, 1u);
    EXPECT_EQ(reaped[1].tuple.saddr, 2u);
    EXPECT_EQ(next, 15u) << "head expiry of the surviving entry";
    EXPECT_EQ(tw.size(), 1u);

    reaped.clear();
    EXPECT_EQ(tw.reapExpired(0, 20, reaped), 0u) << "bucket drained";
    EXPECT_EQ(reaped.size(), 1u);
    EXPECT_EQ(tw.peakSize(), 3u);
}

TEST(TimeWaitTable, GenerationStampPreventsStaleSlotAliasing)
{
    TimeWaitTable tw(1);
    FiveTuple t = tuple(7, 4000, 80);
    tw.add(0, t, 10, false);
    EXPECT_TRUE(tw.remove(t));      // leaves a stale FIFO slot behind
    tw.add(0, t, 50, false);        // same tuple, new lingering episode

    std::vector<TimeWaitTable::Entry> reaped;
    std::uint64_t next = tw.reapExpired(0, 10, reaped);
    EXPECT_TRUE(reaped.empty())
        << "the stale slot must not reap the re-added entry early";
    EXPECT_EQ(next, 50u);
    EXPECT_NE(tw.find(t), nullptr);

    reaped.clear();
    tw.reapExpired(0, 50, reaped);
    ASSERT_EQ(reaped.size(), 1u);
    EXPECT_EQ(reaped[0].expires, 50u);
}

TEST(TimeWaitTable, HeadExpiryPrunesStaleHeads)
{
    TimeWaitTable tw(2);
    tw.add(1, tuple(1, 2000, 80), 10, false);
    tw.add(1, tuple(2, 2000, 80), 20, false);
    EXPECT_EQ(tw.headExpiry(1), 10u);
    EXPECT_TRUE(tw.remove(tuple(1, 2000, 80)));
    EXPECT_EQ(tw.headExpiry(1), 20u) << "stale head slot skipped";
    EXPECT_EQ(tw.headExpiry(0), 0u) << "other bucket empty";
}

// ------------------------------------------- kernel-level TW lifecycle

/** Drive a bounded short-lived nginx workload to completion + linger. */
ExperimentResult
runBounded(ExperimentConfig &, Testbed &bed, double sim_sec)
{
    bed.startLoad();
    bed.markWindows();
    bed.runUntilChecked(ticksFromSeconds(sim_sec));
    return bed.collect();
}

TEST(TimeWaitLifecycle, LingerReapAndAgreementAcrossKernels)
{
    // The server actively closes every short-lived exchange, so each of
    // the 300 connections must enter TIME_WAIT, linger ~20 jiffies, and
    // be reaped by the shared per-bucket reaper — on both kernels, with
    // identical lifecycle totals (the diff-oracle bar applied to the
    // TIME_WAIT path).
    std::vector<KernelStats> totals;
    for (const KernelConfig &k :
         {KernelConfig::base2632(), KernelConfig::fastsocket()}) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = 2;
        cfg.machine.kernel = k;
        cfg.concurrencyPerCore = 20;
        cfg.maxConns = 300;
        Testbed bed(cfg);
        ExperimentResult r = runBounded(cfg, bed, 2.0);
        EXPECT_TRUE(r.invariants.ok()) << r.invariants.summary();
        EXPECT_EQ(bed.load().completed(), 300u);
        EXPECT_EQ(bed.load().failed(), 0u);

        const KernelStack &kern = bed.machine().kernel();
        const KernelStats &ks = kern.stats();
        EXPECT_EQ(ks.timeWaitEntered, 300u)
            << "every active close must linger";
        EXPECT_EQ(ks.timeWaitReaped, ks.timeWaitEntered)
            << "linger elapsed: the reaper must have drained the table";
        EXPECT_EQ(kern.timeWaitTable().size(), 0u);
        EXPECT_GT(kern.timeWaitTable().peakSize(), 0u);
        EXPECT_EQ(ks.establishedCurr, 0u);
        EXPECT_EQ(ks.timeWaitRecycled, 0u);
        EXPECT_EQ(ks.portAllocFailures, 0u);
        totals.push_back(ks);
    }
    EXPECT_EQ(totals[0].timeWaitEntered, totals[1].timeWaitEntered);
    EXPECT_EQ(totals[0].timeWaitReaped, totals[1].timeWaitReaped);
    EXPECT_EQ(totals[0].timeWaitSynDropped,
              totals[1].timeWaitSynDropped);
}

TEST(TimeWaitLifecycle, SynIntoLingeringTupleDropsThenRetrySucceeds)
{
    // One client IP with 8 ephemeral ports and 16 wanted connections in
    // flight: completed tuples are immediately re-dialed while the
    // server side still lingers. Conservative stacks drop those SYNs;
    // the client's RTO retry lands after the linger and every
    // connection still completes.
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::base2632();
    cfg.concurrencyPerCore = 8;
    cfg.clientIps = 1;
    cfg.clientPortSpan = 8;
    cfg.maxConns = 120;
    cfg.clientRtoBase = ticksFromSeconds(0.005);
    Testbed bed(cfg);
    ExperimentResult r = runBounded(cfg, bed, 4.0);
    EXPECT_TRUE(r.invariants.ok()) << r.invariants.summary();
    EXPECT_EQ(bed.load().completed(), 120u);
    EXPECT_EQ(bed.load().failed(), 0u);

    const KernelStats &ks = bed.machine().kernel().stats();
    EXPECT_GT(ks.timeWaitSynDropped, 0u)
        << "tuple reuse inside the linger must hit the drop path";
    EXPECT_EQ(ks.timeWaitRecycled, 0u);
}

TEST(TimeWaitLifecycle, RecycleAdmitsTupleReuseWithoutRetries)
{
    // Same pressure, tcp_tw_recycle on: the fresh SYN reclaims the
    // lingering entry instead of being dropped.
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::base2632();
    cfg.machine.kernel.twRecycle = true;
    cfg.concurrencyPerCore = 8;
    cfg.clientIps = 1;
    cfg.clientPortSpan = 8;
    cfg.maxConns = 120;
    cfg.clientRtoBase = ticksFromSeconds(0.005);
    Testbed bed(cfg);
    ExperimentResult r = runBounded(cfg, bed, 4.0);
    EXPECT_TRUE(r.invariants.ok()) << r.invariants.summary();
    EXPECT_EQ(bed.load().completed(), 120u);
    EXPECT_EQ(bed.load().failed(), 0u);

    const KernelStats &ks = bed.machine().kernel().stats();
    EXPECT_GT(ks.timeWaitRecycled, 0u)
        << "recycle must reclaim lingering tuples on SYN";
    EXPECT_EQ(ks.timeWaitSynDropped, 0u)
        << "with recycle on, no SYN should be dropped for TIME_WAIT";
}

TEST(TimeWaitLifecycle, TwReuseRelievesProxyPortExhaustion)
{
    // An active-connect proxy against ONE keep-alive backend with a
    // 16-port ephemeral range. Keep-alive backends never FIN first, so
    // the proxy actively closes every backend connection and each
    // ephemeral port lingers in TIME_WAIT for the full 20ms. Only 8
    // sessions run concurrently — live connections alone never exhaust
    // the range — but the lingering entries do: connect() hits
    // EADDRNOTAVAIL. With tcp_tw_reuse the port returns at close time
    // and the same workload sails through.
    auto run = [](bool tw_reuse) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kHaproxy;
        cfg.machine.cores = 2;
        cfg.machine.kernel = KernelConfig::base2632();
        cfg.machine.kernel.ephemeralPortLo = 32768;
        cfg.machine.kernel.ephemeralPortHi = 32783;
        cfg.machine.kernel.twReuse = tw_reuse;
        cfg.backendCount = 1;
        cfg.backendKeepAlive = true;
        cfg.concurrencyPerCore = 4;
        cfg.maxConns = 300;
        Testbed bed(cfg);
        bed.startLoad();
        bed.runUntilChecked(ticksFromSeconds(3.0));
        const KernelStats &ks = bed.machine().kernel().stats();
        struct
        {
            std::uint64_t portFailures;
            std::uint64_t twEntered;
            std::uint64_t clientFailed;
            std::uint64_t completed;
        } out{ks.portAllocFailures, ks.timeWaitEntered,
              bed.load().failed(), bed.load().completed()};
        return out;
    };

    auto exhausted = run(/*tw_reuse=*/false);
    EXPECT_GT(exhausted.twEntered, 0u)
        << "the proxy must be the active closer toward keep-alive "
           "backends";
    EXPECT_GT(exhausted.portFailures, 0u)
        << "16 ports + 20ms linger must exhaust the range";
    EXPECT_GT(exhausted.clientFailed, 0u)
        << "port exhaustion is client-visible through the proxy";

    auto relieved = run(/*tw_reuse=*/true);
    EXPECT_GT(relieved.twEntered, 0u);
    EXPECT_EQ(relieved.portFailures, 0u)
        << "tcp_tw_reuse returns ports at close time";
    EXPECT_EQ(relieved.clientFailed, 0u);
    EXPECT_EQ(relieved.completed, 300u);
}

TEST(MixedLifetime, ConnectionCloseNegotiationDrainsBothKernels)
{
    // Half the connections are long-lived (2 keep-alive requests with a
    // short think), half are "Connection: close" one-shots. The server
    // keeps keep-alive on yet actively closes each connection at its
    // flagged last request, so every connection funnels through
    // TIME_WAIT — and both kernels agree on every lifecycle total.
    std::vector<KernelStats> totals;
    for (const KernelConfig &k :
         {KernelConfig::base2632(), KernelConfig::fastsocket()}) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = 2;
        cfg.machine.kernel = k;
        cfg.concurrencyPerCore = 15;
        cfg.maxConns = 200;
        cfg.longLivedPermille = 500;
        cfg.longLivedRequests = 2;
        cfg.longLivedThink = ticksFromSeconds(0.002);
        Testbed bed(cfg);
        ExperimentResult r = runBounded(cfg, bed, 3.0);
        EXPECT_TRUE(r.invariants.ok()) << r.invariants.summary();
        EXPECT_EQ(bed.load().completed(), 200u);
        EXPECT_EQ(bed.load().failed(), 0u);
        EXPECT_EQ(bed.load().responses(), 300u)
            << "100 one-shots + 100 two-request keep-alive conns";

        const KernelStats &ks = bed.machine().kernel().stats();
        EXPECT_EQ(ks.timeWaitEntered, 200u)
            << "the close header must put the server on the "
               "active-close path for every connection";
        EXPECT_EQ(ks.timeWaitReaped, 200u);
        EXPECT_GT(ks.establishedPeak, 0u);
        EXPECT_EQ(ks.establishedCurr, 0u);
        totals.push_back(ks);
    }
    EXPECT_EQ(totals[0].timeWaitEntered, totals[1].timeWaitEntered);
    EXPECT_EQ(totals[0].timeWaitReaped, totals[1].timeWaitReaped);
}

} // anonymous namespace
} // namespace fsim
