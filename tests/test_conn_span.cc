/**
 * @file
 * Tests for the per-connection span log: lifecycle conservation,
 * accept-queue sojourn placement, exec-time reconciliation against CPU
 * busy cycles, --notrace zero-cost, forensics determinism, and the
 * Perfetto exporter's flow/slice accounting.
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "trace/conn_span.hh"
#include "trace/perfetto_export.hh"
#include "trace/span_forensics.hh"

namespace fsim
{
namespace
{

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.machine.cores = 2;
    cfg.concurrencyPerCore = 30;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.02;
    return cfg;
}

TEST(ConnSpanLog, RecordsLifecycleAndLatency)
{
    ConnSpanLog log;
    log.open(7, 100, /*passive=*/true);
    log.add(7, ConnStage::kSynRx, 0, 100, 140);
    log.add(7, ConnStage::kAcceptQueue, 0, 140, 300);
    log.add(7, ConnStage::kAccept, 1, 300, 360);
    log.add(7, ConnStage::kAppRead, 1, 400, 420);
    log.add(7, ConnStage::kAppWrite, 1, 420, 470);
    log.close(7, 600);

    ASSERT_EQ(log.completedCount(), 1u);
    EXPECT_EQ(log.liveCount(), 0u);
    const ConnSpanTrace &tr = log.completed().front();
    EXPECT_EQ(tr.connId, 7u);
    EXPECT_TRUE(tr.closed);
    EXPECT_TRUE(tr.passive);
    EXPECT_EQ(tr.openTick, 100u);
    EXPECT_EQ(tr.closeTick, 600u);
    EXPECT_EQ(tr.stageTicks(ConnStage::kAcceptQueue), 160u);
    // Latency runs to the end of the last write, not to destruction.
    EXPECT_EQ(tr.serviceLatency(), 470u - 100u);
    // Spans on unknown ids (already destroyed) are silently ignored.
    log.add(999, ConnStage::kSoftirqRx, 0, 700, 710);
    EXPECT_EQ(log.spansRecorded(), 5u);
}

TEST(ConnSpanLog, DisabledIsFree)
{
    ConnSpanLog log;
    log.setEnabled(false);
    log.open(1, 10, true);
    log.add(1, ConnStage::kSynRx, 0, 10, 20);
    log.noteShed(1, 0);
    log.close(1, 30);
    EXPECT_EQ(log.allocations(), 0u);
    EXPECT_EQ(log.opened(), 0u);
    EXPECT_EQ(log.completedCount(), 0u);
    EXPECT_EQ(log.execSelfTicks(0), 0u);
}

TEST(ConnSpanLog, PerConnSpanCapCountsDrops)
{
    ConnSpanLog log;
    log.open(1, 0, true);
    const std::size_t extra = 5;
    for (std::size_t i = 0; i < ConnSpanLog::kMaxSpansPerConn + extra;
         ++i) {
        Tick b = static_cast<Tick>(i * 10);
        log.add(1, ConnStage::kSoftirqRx, 0, b, b + 4);
    }
    EXPECT_EQ(log.spansDropped(), extra);
    log.close(1, 10000);
    EXPECT_EQ(log.completed().front().spans.size(),
              ConnSpanLog::kMaxSpansPerConn);
    // Exec accounting still covers the dropped spans: the core ran them
    // whether or not the per-connection vector kept them.
    EXPECT_EQ(log.execSelfTicks(0),
              4u * (ConnSpanLog::kMaxSpansPerConn + extra));
}

TEST(ConnSpanTest, LifecycleConservation)
{
    ExperimentConfig cfg = smallConfig();
    Testbed bed(cfg);
    bed.run();

    const ConnSpanLog &log = bed.machine().tracer().connSpans();
    // Every trace ever opened is either completed or still live.
    EXPECT_EQ(log.opened(), log.closedTotal() + log.liveCount());
    EXPECT_EQ(log.closedTotal(),
              log.completedCount() + log.tracesDropped());
    EXPECT_GT(log.completedCount(), 0u);

    for (const ConnSpanTrace &tr : log.completed()) {
        EXPECT_TRUE(tr.closed);
        EXPECT_GE(tr.closeTick, tr.openTick);
        for (const ConnSpan &sp : tr.spans) {
            EXPECT_LE(sp.begin, sp.end);
            EXPECT_GE(sp.begin, tr.openTick);
            EXPECT_LE(sp.end, tr.closeTick);
        }
    }
}

TEST(ConnSpanTest, AcceptQueueSojournSpansMatchDequeue)
{
    ExperimentConfig cfg = smallConfig();
    Testbed bed(cfg);
    bed.run();

    const ConnSpanLog &log = bed.machine().tracer().connSpans();
    std::size_t checked = 0;
    for (const ConnSpanTrace &tr : log.completed()) {
        if (!tr.passive)
            continue;
        const ConnSpan *queue = nullptr;
        const ConnSpan *accept = nullptr;
        std::size_t queue_spans = 0;
        for (const ConnSpan &sp : tr.spans) {
            if (sp.stage == ConnStage::kAcceptQueue) {
                queue = &sp;
                ++queue_spans;
            } else if (sp.stage == ConnStage::kAccept) {
                accept = &sp;
            }
        }
        if (!accept)
            continue;   // destroyed before accept (overflow, reset)
        ++checked;
        // Accepted exactly once => exactly one sojourn span, and the
        // dequeue instant lies inside the accept() syscall that popped
        // the connection: enqueue <= dequeue, dequeue within accept.
        ASSERT_NE(queue, nullptr);
        EXPECT_EQ(queue_spans, 1u);
        EXPECT_LE(queue->begin, queue->end);
        EXPECT_GE(queue->end, accept->begin);
        EXPECT_LE(queue->end, accept->end);
    }
    EXPECT_GT(checked, 0u);
}

TEST(ConnSpanTest, ExecTimeReconcilesWithBusyCycles)
{
    ExperimentConfig cfg = smallConfig();
    Testbed bed(cfg);
    bed.run();

    const ConnSpanLog &log = bed.machine().tracer().connSpans();
    std::uint64_t total_exec = 0;
    for (int c = 0; c < bed.machine().numCores(); ++c) {
        std::uint64_t exec = log.execSelfTicks(c);
        std::uint64_t busy = bed.machine().cpu().core(c).busyTicks();
        // Exec spans are sub-intervals of serially executed tasks: the
        // per-core recorded exec time can never exceed busy time.
        EXPECT_LE(exec, busy) << "core " << c;
        total_exec += exec;
    }
    EXPECT_GT(total_exec, 0u);
}

TEST(ConnSpanTest, NotraceCostsNothingAndKeepsFingerprint)
{
    ExperimentConfig cfg = smallConfig();
    Testbed traced(cfg);
    ExperimentResult rt = traced.run();

    ExperimentConfig off = smallConfig();
    off.machine.traceEnabled = false;
    Testbed untraced(off);
    ExperimentResult ru = untraced.run();

    const ConnSpanLog &log = untraced.machine().tracer().connSpans();
    EXPECT_EQ(log.allocations(), 0u);
    EXPECT_EQ(log.opened(), 0u);
    EXPECT_EQ(log.completedCount(), 0u);
    EXPECT_FALSE(ru.spanForensics.enabled);
    // Tracing must not perturb simulated behavior.
    EXPECT_EQ(rt.fingerprint, ru.fingerprint);
    EXPECT_TRUE(rt.spanForensics.enabled);
    EXPECT_GT(rt.spanForensics.completed, 0u);
}

TEST(ConnSpanTest, ForensicsDeterministicAcrossRuns)
{
    ExperimentConfig cfg = smallConfig();
    Testbed a(cfg);
    ExperimentResult ra = a.run();
    Testbed b(cfg);
    ExperimentResult rb = b.run();

    EXPECT_EQ(ra.fingerprint, rb.fingerprint);
    EXPECT_EQ(renderSpanForensics(ra.spanForensics, "x"),
              renderSpanForensics(rb.spanForensics, "x"));
    ASSERT_EQ(ra.spanForensics.exemplars.size(),
              rb.spanForensics.exemplars.size());
    for (std::size_t i = 0; i < ra.spanForensics.exemplars.size(); ++i) {
        EXPECT_EQ(ra.spanForensics.exemplars[i].connId,
                  rb.spanForensics.exemplars[i].connId);
        EXPECT_EQ(ra.spanForensics.exemplars[i].latency,
                  rb.spanForensics.exemplars[i].latency);
    }
    EXPECT_EQ(ra.spanForensics.dominantTailStage,
              rb.spanForensics.dominantTailStage);
}

TEST(ConnSpanTest, ForensicsSingleConnPicksItEverywhere)
{
    ConnSpanLog log;
    log.open(42, 0, true);
    log.add(42, ConnStage::kSynRx, 0, 0, 10);
    log.add(42, ConnStage::kAcceptQueue, 0, 10, 200);
    log.add(42, ConnStage::kAccept, 1, 200, 230);
    log.add(42, ConnStage::kAppWrite, 1, 240, 260);
    log.close(42, 300);

    SpanForensics f = buildSpanForensics(log, 0);
    EXPECT_TRUE(f.enabled);
    EXPECT_EQ(f.completed, 1u);
    ASSERT_EQ(f.exemplars.size(), 3u);
    for (const ExemplarBreakdown &ex : f.exemplars) {
        EXPECT_EQ(ex.connId, 42u);
        EXPECT_EQ(ex.latency, 260u);
    }
    EXPECT_EQ(f.dominantTailStage, "accept-queue");
}

TEST(PerfettoExport, EmitsFlowsOnlyAcrossCores)
{
    std::vector<ConnSpanTrace> traces;
    ConnSpanTrace cross;
    cross.connId = 1;
    cross.openTick = 0;
    cross.closeTick = 100;
    cross.closed = true;
    cross.spans.push_back({0, 20, 0, 0, ConnStage::kSynRx});
    cross.spans.push_back({30, 50, 0, 1, ConnStage::kAppRead});
    traces.push_back(cross);
    ConnSpanTrace local;
    local.connId = 2;
    local.openTick = 0;
    local.closeTick = 100;
    local.closed = true;
    local.spans.push_back({0, 20, 0, 0, ConnStage::kSynRx});
    local.spans.push_back({30, 50, 0, 0, ConnStage::kAppRead});
    traces.push_back(local);

    PerfettoMeta meta;
    meta.bench = "unit";
    meta.label = "flows";
    meta.cores = 2;
    const char *path = "test_conn_span_perfetto.json";
    PerfettoStats st;
    ASSERT_TRUE(writePerfettoTrace(path, traces, meta, &st));
    EXPECT_EQ(st.tracesExported, 2u);
    EXPECT_EQ(st.durationEvents, 8u);   // 4 spans -> paired B + E
    // Only the connection that hopped cores gets a flow arrow.
    EXPECT_EQ(st.flowPairs, 1u);
    EXPECT_FALSE(st.truncated);
    std::remove(path);
}

} // namespace
} // namespace fsim
