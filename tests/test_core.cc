/**
 * @file
 * Unit tests for the per-core run-to-completion scheduler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.hh"

namespace fsim
{
namespace
{

struct CoreFixture : public ::testing::Test
{
    EventQueue eq;
    CacheModel cache{4, 400};
    CycleCosts costs;
    CpuModel cpu{eq, cache, costs, 4};
};

TEST_F(CoreFixture, TasksRunSeriallyOnOneCore)
{
    std::vector<std::pair<Tick, Tick>> spans;
    for (int i = 0; i < 3; ++i) {
        cpu.post(0, TaskPrio::kProcess, [&spans](Tick start) {
            spans.emplace_back(start, start + 1000);
            return start + 1000;
        });
    }
    eq.runAll();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].first, 0u);
    EXPECT_EQ(spans[1].first, 1000u);
    EXPECT_EQ(spans[2].first, 2000u);
    EXPECT_EQ(cpu.core(0).busyTicks(), 3000u);
    EXPECT_EQ(cpu.core(0).tasksRun(), 3u);
}

TEST_F(CoreFixture, CoresRunInParallel)
{
    std::vector<Tick> starts;
    for (int c = 0; c < 4; ++c) {
        cpu.post(c, TaskPrio::kProcess, [&starts](Tick start) {
            starts.push_back(start);
            return start + 500;
        });
    }
    eq.runAll();
    for (Tick s : starts)
        EXPECT_EQ(s, 0u);
    EXPECT_EQ(cpu.totalBusyTicks(), 2000u);
}

TEST_F(CoreFixture, SoftIrqPreemptsQueuedProcessWork)
{
    std::vector<int> order;
    // Occupy the core so both tasks end up queued.
    cpu.post(0, TaskPrio::kProcess, [](Tick t) { return t + 100; });
    cpu.post(0, TaskPrio::kProcess, [&](Tick t) {
        order.push_back(1);
        return t + 10;
    });
    cpu.post(0, TaskPrio::kSoftIrq, [&](Tick t) {
        order.push_back(0);
        return t + 10;
    });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST_F(CoreFixture, IdleGapsDoNotCountAsBusy)
{
    cpu.post(0, TaskPrio::kProcess, [](Tick t) { return t + 100; });
    eq.runAll();
    eq.schedule(10000, [this] {
        cpu.post(0, TaskPrio::kProcess, [](Tick t) { return t + 100; });
    });
    eq.runAll();
    EXPECT_EQ(cpu.core(0).busyTicks(), 200u);
    // The second task executed at its event time; its cost extends the
    // core's horizon, not the event clock.
    EXPECT_EQ(eq.now(), 10000u);
    EXPECT_EQ(cpu.core(0).busyUntil(), 10100u);
}

TEST_F(CoreFixture, TaskCanPostMoreWork)
{
    int runs = 0;
    std::function<Tick(Tick)> task = [&](Tick t) -> Tick {
        if (++runs < 5)
            cpu.post(0, TaskPrio::kProcess, task);
        return t + 10;
    };
    cpu.post(0, TaskPrio::kProcess, task);
    eq.runAll();
    EXPECT_EQ(runs, 5);
    EXPECT_EQ(cpu.core(0).busyUntil(), 50u);
}

TEST_F(CoreFixture, BacklogReported)
{
    cpu.post(1, TaskPrio::kProcess, [](Tick t) { return t + 10; });
    cpu.post(1, TaskPrio::kProcess, [](Tick t) { return t + 10; });
    cpu.post(1, TaskPrio::kSoftIrq, [](Tick t) { return t + 10; });
    EXPECT_EQ(cpu.core(1).backlog(), 3u);
    eq.runAll();
    EXPECT_EQ(cpu.core(1).backlog(), 0u);
}

TEST_F(CoreFixture, ImplicitLocalAccessesCharged)
{
    cpu.post(0, TaskPrio::kProcess,
             [](Tick t) { return t + 3000; });
    eq.runAll();
    // 3000 cycles / cyclesPerLocalAccess(300) = 10 implicit accesses.
    EXPECT_EQ(cache.accesses(0), 10u);
}

TEST_F(CoreFixture, ZeroLengthTaskAllowed)
{
    cpu.post(2, TaskPrio::kProcess, [](Tick t) { return t; });
    eq.runAll();
    EXPECT_EQ(cpu.core(2).busyTicks(), 0u);
    EXPECT_EQ(cpu.core(2).tasksRun(), 1u);
}

TEST(CoreDeath, TaskFinishingInThePastPanics)
{
    EventQueue eq;
    CacheModel cache(1, 400);
    CycleCosts costs;
    CpuModel cpu(eq, cache, costs, 1);
    cpu.post(0, TaskPrio::kProcess, [](Tick t) { return t + 100; });
    eq.runAll();
    cpu.post(0, TaskPrio::kProcess, [](Tick) { return Tick{0}; });
    EXPECT_DEATH(eq.runAll(), "finished before");
}

} // anonymous namespace
} // namespace fsim
