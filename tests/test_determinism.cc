/**
 * @file
 * Determinism regression tests: the fingerprint of a run is a pure
 * function of (config, seed). Same seed => bit-identical fingerprints;
 * tracing on/off must not move it (tracing charges no simulated
 * cycles); different seeds must diverge.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace fsim
{
namespace
{

ExperimentConfig
smallConfig(AppKind app, std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.machine.cores = 2;
    cfg.machine.seed = seed;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.02;
    cfg.concurrencyPerCore = 50;
    return cfg;
}

TEST(Determinism, SameSeedSameFingerprintNginx)
{
    ExperimentResult a = runExperiment(smallConfig(AppKind::kNginx, 11));
    ExperimentResult b = runExperiment(smallConfig(AppKind::kNginx, 11));
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_DOUBLE_EQ(a.cps, b.cps);
    EXPECT_EQ(a.served, b.served);
}

TEST(Determinism, SameSeedSameFingerprintHaproxy)
{
    ExperimentResult a =
        runExperiment(smallConfig(AppKind::kHaproxy, 11));
    ExperimentResult b =
        runExperiment(smallConfig(AppKind::kHaproxy, 11));
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.served, b.served);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    ExperimentResult a = runExperiment(smallConfig(AppKind::kNginx, 11));
    ExperimentResult b = runExperiment(smallConfig(AppKind::kNginx, 12));
    EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Determinism, AppsDiverge)
{
    ExperimentResult a = runExperiment(smallConfig(AppKind::kNginx, 11));
    ExperimentResult b =
        runExperiment(smallConfig(AppKind::kHaproxy, 11));
    EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Determinism, TraceOnOffIsBitIdentical)
{
    // Tracing is pure observation: it charges no simulated cycles, so
    // enabling or disabling it must not perturb a single event.
    for (AppKind app : {AppKind::kNginx, AppKind::kHaproxy}) {
        ExperimentConfig on = smallConfig(app, 7);
        on.machine.traceEnabled = true;
        ExperimentConfig off = smallConfig(app, 7);
        off.machine.traceEnabled = false;
        ExperimentResult a = runExperiment(on);
        ExperimentResult b = runExperiment(off);
        EXPECT_EQ(a.fingerprint, b.fingerprint)
            << "tracing perturbed the simulation (app "
            << static_cast<int>(app) << ")";
        EXPECT_EQ(a.served, b.served);
    }
}

TEST(Determinism, CheckLevelIsBehaviorNeutral)
{
    // Periodic checking slices runUntil into intervals; events still
    // execute at identical ticks, so the fingerprint must not move.
    ExperimentConfig off = smallConfig(AppKind::kNginx, 7);
    off.checkLevel = CheckLevel::kOff;
    ExperimentConfig periodic = smallConfig(AppKind::kNginx, 7);
    periodic.checkLevel = CheckLevel::kPeriodic;
    periodic.checkIntervalSec = 0.001;
    ExperimentResult a = runExperiment(off);
    ExperimentResult b = runExperiment(periodic);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(Determinism, FingerprintTracksKernelFeatures)
{
    ExperimentConfig base = smallConfig(AppKind::kNginx, 7);
    ExperimentConfig fast = smallConfig(AppKind::kNginx, 7);
    fast.machine.kernel = KernelConfig::fastsocket();
    ExperimentResult a = runExperiment(base);
    ExperimentResult b = runExperiment(fast);
    EXPECT_NE(a.fingerprint, b.fingerprint)
        << "different kernels must produce different event sequences";
}

} // anonymous namespace
} // namespace fsim
