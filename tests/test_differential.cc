/**
 * @file
 * Differential-oracle tests: base 2.6.32 and Fastsocket must produce
 * identical application-level totals for the same bounded workload,
 * with clean leak-free quiescence on both sides — while the perf
 * observables move in the paper's direction on a contended machine.
 */

#include <gtest/gtest.h>

#include "check/differential.hh"

namespace fsim
{
namespace
{

TEST(Differential, NginxAppObservablesMatch)
{
    DifferentialWorkload wl;
    wl.app = AppKind::kNginx;
    wl.cores = 4;
    wl.maxConns = 800;
    wl.concurrencyPerCore = 40;
    DifferentialOutcome out = runDifferential(wl);
    EXPECT_TRUE(out.appMatch()) << out.summary();
    EXPECT_TRUE(out.base.drained);
    EXPECT_TRUE(out.fast.drained);
    EXPECT_EQ(out.base.completed, 800u);
    EXPECT_EQ(out.base.failed, 0u);
    EXPECT_TRUE(out.base.invariants.ok())
        << out.base.invariants.summary();
    EXPECT_TRUE(out.fast.invariants.ok())
        << out.fast.invariants.summary();
    EXPECT_TRUE(out.perfDirectionOk) << out.perfDetail;
    EXPECT_TRUE(out.ok());
}

TEST(Differential, HaproxyAppObservablesMatch)
{
    DifferentialWorkload wl;
    wl.app = AppKind::kHaproxy;
    wl.cores = 4;
    wl.maxConns = 800;
    wl.concurrencyPerCore = 40;
    DifferentialOutcome out = runDifferential(wl);
    EXPECT_TRUE(out.appMatch()) << out.summary();
    EXPECT_EQ(out.base.completed, 800u);
    EXPECT_TRUE(out.base.invariants.ok())
        << out.base.invariants.summary();
    EXPECT_TRUE(out.fast.invariants.ok())
        << out.fast.invariants.summary();
    EXPECT_TRUE(out.ok());
}

TEST(Differential, KeepAliveWorkloadMatches)
{
    DifferentialWorkload wl;
    wl.app = AppKind::kNginx;
    wl.cores = 2;
    wl.maxConns = 300;
    wl.requestsPerConn = 3;
    wl.concurrencyPerCore = 25;
    DifferentialOutcome out = runDifferential(wl);
    EXPECT_TRUE(out.appMatch()) << out.summary();
    EXPECT_EQ(out.base.responses, 900u) << "3 responses per connection";
}

TEST(Differential, PerfObservablesActuallyDiffer)
{
    // The oracle is only meaningful if the two kernels genuinely take
    // different paths: the baseline must burn lock-wait cycles that
    // Fastsocket's partitioned design avoids.
    DifferentialWorkload wl;
    wl.cores = 4;
    wl.maxConns = 800;
    DifferentialOutcome out = runDifferential(wl);
    EXPECT_GT(out.base.lockWaitTicks, out.fast.lockWaitTicks)
        << out.perfDetail;
    EXPECT_NE(out.base.fingerprint, out.fast.fingerprint);
}

TEST(Differential, MismatchReportingFormat)
{
    DifferentialOutcome out;
    out.base.completed = 100;
    out.fast.completed = 100;
    EXPECT_TRUE(out.appMatch());
    out.mismatches.push_back("completed: 100 (base) vs 99 (fastsocket)");
    EXPECT_FALSE(out.appMatch());
    EXPECT_FALSE(out.ok());
    EXPECT_NE(out.summary().find("MISMATCH"), std::string::npos);
}

} // anonymous namespace
} // namespace fsim
