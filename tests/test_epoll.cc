/**
 * @file
 * Unit tests for the simulated epoll instance.
 */

#include <gtest/gtest.h>

#include "epollsim/epoll.hh"

namespace fsim
{
namespace
{

struct EpollFixture : public ::testing::Test
{
    LockRegistry locks;
    CacheModel cache{4, 400};
    CycleCosts costs;
    EventPoll ep{locks, cache, costs};
};

TEST_F(EpollFixture, AddThenWakeThenWait)
{
    ep.ctlAdd(0, 0, 5);
    EXPECT_TRUE(ep.watching(5));
    EXPECT_FALSE(ep.hasReady());
    ep.wake(0, 100, 5);
    EXPECT_TRUE(ep.hasReady());
    std::vector<int> out;
    ep.wait(0, 200, out);
    EXPECT_EQ(out, (std::vector<int>{5}));
    EXPECT_FALSE(ep.hasReady());
}

TEST_F(EpollFixture, WakeOnUnwatchedFdIsNoOp)
{
    Tick t = ep.wake(0, 100, 42);
    EXPECT_EQ(t, 100u) << "no lock taken, no time charged";
    EXPECT_FALSE(ep.hasReady());
}

TEST_F(EpollFixture, DuplicateWakesCollapse)
{
    ep.ctlAdd(0, 0, 7);
    ep.wake(0, 10, 7);
    ep.wake(0, 20, 7);
    ep.wake(0, 30, 7);
    std::vector<int> out;
    ep.wait(0, 100, out);
    EXPECT_EQ(out.size(), 1u);
}

TEST_F(EpollFixture, ReadyAgainAfterDrain)
{
    ep.ctlAdd(0, 0, 7);
    ep.wake(0, 10, 7);
    std::vector<int> out;
    ep.wait(0, 100, out);
    ep.wake(0, 200, 7);
    out.clear();
    ep.wait(0, 300, out);
    EXPECT_EQ(out.size(), 1u);
}

TEST_F(EpollFixture, CtlDelRemovesInterestAndReadyEntry)
{
    ep.ctlAdd(0, 0, 7);
    ep.wake(0, 10, 7);
    ep.ctlDel(0, 20, 7);
    EXPECT_FALSE(ep.watching(7));
    std::vector<int> out;
    ep.wait(0, 100, out);
    EXPECT_TRUE(out.empty());
}

TEST_F(EpollFixture, MaxEventsBoundsOneWait)
{
    for (int fd = 0; fd < 100; ++fd) {
        ep.ctlAdd(0, 0, fd);
        ep.wake(0, 10, fd);
    }
    std::vector<int> out;
    ep.wait(0, 100, out, 64);
    EXPECT_EQ(out.size(), 64u);
    EXPECT_TRUE(ep.hasReady());
    std::vector<int> rest;
    ep.wait(0, 200, rest, 64);
    EXPECT_EQ(rest.size(), 36u);
    EXPECT_FALSE(ep.hasReady());
}

TEST_F(EpollFixture, FifoOrderPreserved)
{
    for (int fd : {3, 9, 1})
        ep.ctlAdd(0, 0, fd);
    for (int fd : {9, 3, 1})
        ep.wake(0, 10, fd);
    std::vector<int> out;
    ep.wait(0, 100, out);
    EXPECT_EQ(out, (std::vector<int>{9, 3, 1}));
}

TEST_F(EpollFixture, EpLockChargedOnWakeAndWait)
{
    ep.ctlAdd(0, 0, 5);
    ep.wake(1, 100, 5);
    std::vector<int> out;
    ep.wait(0, 200, out);
    // ctlAdd + wake + wait = 3 acquisitions of ep.lock.
    EXPECT_EQ(locks.getClass("ep.lock")->acquisitions, 3u);
}

TEST_F(EpollFixture, CrossCoreWakeEventuallyContends)
{
    ep.ctlAdd(0, 0, 5);
    // SoftIRQ on core 1 wakes while the app on core 0 waits at nearly
    // the same instant — the ep.lock race of Table 1.
    Tick t0 = 0, t1 = 0;
    std::vector<int> out;
    for (int i = 0; i < 400; ++i) {
        t1 = ep.wake(1, t1, 5);
        out.clear();
        t0 = ep.wait(0, t0, out);
    }
    EXPECT_GT(locks.getClass("ep.lock")->contentions, 0u);
}

TEST_F(EpollFixture, InterestCount)
{
    EXPECT_EQ(ep.interestCount(), 0u);
    ep.ctlAdd(0, 0, 1);
    ep.ctlAdd(0, 0, 2);
    EXPECT_EQ(ep.interestCount(), 2u);
    ep.ctlDel(0, 0, 1);
    EXPECT_EQ(ep.interestCount(), 1u);
}

} // anonymous namespace
} // namespace fsim
