/**
 * @file
 * Unit tests for the established-connection hash table (ehash).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/cache_model.hh"
#include "tcp/established_table.hh"

namespace fsim
{
namespace
{

struct EhashFixture : public ::testing::Test
{
    LockRegistry locks;
    CacheModel cache{4, 400};
    CycleCosts costs;
    EstablishedTable table{64, locks, cache, costs};

    std::vector<std::unique_ptr<Socket>> owned;

    Socket *
    conn(IpAddr s, Port sp, IpAddr d, Port dp)
    {
        owned.push_back(std::make_unique<Socket>());
        Socket *sock = owned.back().get();
        sock->kind = SockKind::kConnection;
        sock->rxTuple = FiveTuple{s, d, sp, dp};
        return sock;
    }
};

TEST_F(EhashFixture, InsertThenLookup)
{
    Socket *s = conn(1, 1000, 2, 80);
    Tick t = table.insert(0, 0, s);
    EXPECT_GT(t, 0u);
    auto l = table.lookup(0, t, s->rxTuple);
    EXPECT_EQ(l.sock, s);
    EXPECT_GT(l.t, t);
    EXPECT_EQ(table.size(), 1u);
}

TEST_F(EhashFixture, LookupMissReturnsNull)
{
    auto l = table.lookup(0, 0, FiveTuple{9, 9, 9, 9});
    EXPECT_EQ(l.sock, nullptr);
}

TEST_F(EhashFixture, RemoveMakesUnfindable)
{
    Socket *s = conn(1, 1000, 2, 80);
    table.insert(0, 0, s);
    table.remove(0, 0, s);
    EXPECT_EQ(table.lookup(0, 0, s->rxTuple).sock, nullptr);
    EXPECT_EQ(table.size(), 0u);
}

TEST_F(EhashFixture, RemoveAbsentIsBenign)
{
    Socket *s = conn(1, 1000, 2, 80);
    Tick t = table.remove(0, 0, s);
    EXPECT_GT(t, 0u);   // still charges the probe + lock
    EXPECT_EQ(table.size(), 0u);
}

TEST_F(EhashFixture, CollidingTuplesShareBucketButResolve)
{
    // Force collisions with a tiny table.
    EstablishedTable tiny(2, locks, cache, costs);
    std::vector<Socket *> socks;
    for (int i = 0; i < 16; ++i) {
        Socket *s = conn(1, static_cast<Port>(1000 + i), 2, 80);
        tiny.insert(0, 0, s);
        socks.push_back(s);
    }
    for (Socket *s : socks)
        EXPECT_EQ(tiny.lookup(0, 0, s->rxTuple).sock, s);
}

TEST_F(EhashFixture, EhashLockChargedPerInsertAndRemove)
{
    Socket *s = conn(1, 1000, 2, 80);
    table.insert(0, 0, s);
    table.remove(0, 0, s);
    EXPECT_EQ(locks.getClass("ehash.lock")->acquisitions, 2u);
}

TEST_F(EhashFixture, LookupDoesNotTakeTheLock)
{
    Socket *s = conn(1, 1000, 2, 80);
    table.insert(0, 0, s);
    auto before = locks.getClass("ehash.lock")->acquisitions;
    table.lookup(1, 0, s->rxTuple);
    EXPECT_EQ(locks.getClass("ehash.lock")->acquisitions, before);
}

TEST_F(EhashFixture, SingleCoreUseNeverContends)
{
    // The Local Established Table argument (paper 3.2.2): one core only,
    // so the per-bucket locks never contend.
    Tick t = 0;
    for (int i = 0; i < 500; ++i) {
        Socket *s = conn(1, static_cast<Port>(1024 + i), 2, 80);
        t = table.insert(0, t, s);
        t = table.remove(0, t, s);
    }
    EXPECT_EQ(locks.getClass("ehash.lock")->contentions, 0u);
}

TEST_F(EhashFixture, AllEnumeratesEverySocket)
{
    for (int i = 0; i < 10; ++i)
        table.insert(0, 0, conn(1, static_cast<Port>(2000 + i), 2, 80));
    EXPECT_EQ(table.all().size(), 10u);
}

TEST_F(EhashFixture, DistinctTuplesDistinctSockets)
{
    Socket *a = conn(1, 1000, 2, 80);
    Socket *b = conn(1, 1000, 2, 81);   // same except dport
    table.insert(0, 0, a);
    table.insert(0, 0, b);
    EXPECT_EQ(table.lookup(0, 0, a->rxTuple).sock, a);
    EXPECT_EQ(table.lookup(0, 0, b->rxTuple).sock, b);
}

} // anonymous namespace
} // namespace fsim
