/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"

namespace fsim
{
namespace
{

TEST(EventQueue, StartsAtTimeZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(42, [&] { seen = eq.now(); });
    eq.runOne();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runOne();
    Tick seen = 0;
    eq.scheduleIn(5, [&] { seen = eq.now(); });
    eq.runOne();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    EXPECT_EQ(eq.runAll(), 5u);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {10u, 20u, 30u, 40u})
        eq.schedule(t, [&fired, t] { fired.push_back(t); });
    eq.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 2u);
}

TEST(EventQueue, RunUntilAdvancesNowWhenDrained)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, ExecutedCountsAcrossRuns)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.runUntil(3);
    EXPECT_EQ(eq.executed(), 4u);
    eq.runAll();
    EXPECT_EQ(eq.executed(), 7u);
}

#ifndef NDEBUG
TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runOne();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}
#else
TEST(EventQueue, SchedulingIntoThePastClampsToNowInRelease)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runOne();
    // Release builds clamp to now() and count the slip instead of
    // dying mid-bench; the event still runs, FIFO at the current tick.
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(50, [&] { order.push_back(2); });
    EXPECT_EQ(eq.clampedPast(), 1u);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), 100u);
}
#endif

TEST(EventQueue, TickOverflowNearMax)
{
    // Events parked at and just below the last representable tick must
    // survive epoch spills whose spans approach the full 64-bit range:
    // all ladder bucket math is (when - start) / width, never
    // start + nbuckets * width, so nothing here can wrap.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(kTickMax, [&] { order.push_back(3); });
    eq.schedule(kTickMax - 1, [&] { order.push_back(2); });
    eq.schedule(kTickMax, [&] { order.push_back(4); });   // FIFO tie
    eq.schedule(7, [&] { order.push_back(1); });
    EXPECT_EQ(eq.runAll(), 4u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), kTickMax);
    // runUntil at the limit of time on an already-drained queue.
    eq.runUntil(kTickMax);
    EXPECT_EQ(eq.now(), kTickMax);
    // scheduleIn(0) at the end of time still works.
    bool ran = false;
    eq.scheduleIn(0, [&] { ran = true; });
    eq.runAll();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, WideSpreadStillOrdersTotally)
{
    // One event per power-of-two tick: spans wide enough that a single
    // epoch covers most of the 64-bit range, forcing maximal-width
    // buckets and recursive rung subdivision.
    EventQueue eq;
    std::vector<Tick> fired;
    for (int bit = 62; bit >= 1; --bit) {
        const Tick when = Tick{1} << bit;
        eq.schedule(when, [&fired, when] { fired.push_back(when); });
    }
    EXPECT_EQ(eq.runAll(), 62u);
    ASSERT_EQ(fired.size(), 62u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LT(fired[i - 1], fired[i]);
}

TEST(EventQueue, RunAllWithSelfReschedulingEvents)
{
    // A handler that keeps rescheduling itself exercises node slab
    // recycling across ~100k epochs; runAll must terminate exactly
    // when the chain stops and account every hop.
    EventQueue eq;
    std::uint64_t hops = 0;
    constexpr std::uint64_t kHops = 100'000;
    std::function<void()> chain = [&] {
        if (++hops < kHops)
            eq.scheduleIn(1 + hops % 1000, chain);
    };
    eq.schedule(0, chain);
    EXPECT_EQ(eq.runAll(), kHops);
    EXPECT_EQ(eq.executed(), kHops);
    EXPECT_EQ(eq.pending(), 0u);
    // The slab never grows past the live-event high-water mark
    // (rounded up to one chunk): recycling, not leaking.
    EXPECT_LE(eq.slabCapacity(), 4096u);
}

TEST(EventQueue, StatsCountersTrackActivity)
{
    EventQueue eq;
    EXPECT_EQ(eq.scheduled(), 0u);
    EXPECT_EQ(eq.clampedPast(), 0u);
    for (int i = 0; i < 100; ++i)
        eq.schedule(i * 1000, [] {});
    EXPECT_EQ(eq.scheduled(), 100u);
    EXPECT_EQ(eq.peakPending(), 100u);
    eq.runAll();
    EXPECT_EQ(eq.peakPending(), 100u);
    EXPECT_EQ(eq.executed(), 100u);
}

/** Property: with random schedule times, execution is monotone in time. */
class EventQueueOrderProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EventQueueOrderProperty, MonotoneExecution)
{
    EventQueue eq;
    std::vector<Tick> fired;
    unsigned seed = GetParam();
    std::uint64_t state = seed * 2654435761u + 1;
    for (int i = 0; i < 200; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        Tick when = (state >> 33) % 10000;
        eq.schedule(when, [&fired, when] { fired.push_back(when); });
    }
    eq.runAll();
    ASSERT_EQ(fired.size(), 200u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrderProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

} // anonymous namespace
} // namespace fsim
