/**
 * @file
 * Differential property test: the ladder EventQueue vs the frozen
 * binary-heap ReferenceEventQueue.
 *
 * Millions of randomized schedule / scheduleIn / runOne / runUntil
 * operations (seeded by sim/rng so failures replay exactly) are fed to
 * both queues in lockstep. After every operation the two must agree on
 * now(), pending(), executed() and — via per-event execution logs — on
 * the exact dispatch order, including same-tick FIFO ties, events that
 * schedule more events at now(), and runUntil landing exactly on a
 * bucket or ladder boundary. Any divergence prints the op index and
 * seed needed to reproduce.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "reference_event_queue.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace fsim
{
namespace
{

/** Drives one queue; records each event's id in dispatch order. */
template <typename Queue>
struct Driver
{
    Queue q;
    std::vector<std::uint64_t> log;
    std::uint64_t nextId = 0;

    /**
     * Schedule event @p id at @p when. The handler re-schedules
     * children deterministically from its id: every 5th event spawns a
     * same-tick child (FIFO-at-now coverage) and every 7th a near-
     * future child, so dispatch itself keeps the queues under load.
     */
    void
    scheduleEvent(Tick when, std::uint64_t id)
    {
        q.schedule(when, [this, id] {
            log.push_back(id);
            if (id % 5 == 0) {
                const std::uint64_t child = nextId++;
                q.schedule(q.now(), [this, child] {
                    log.push_back(child);
                });
            }
            if (id % 7 == 0) {
                const std::uint64_t child = nextId++;
                // Saturate at the tick ceiling: a handler can run at
                // (or near) kTickMax, where now + delta would wrap
                // into the past and the two queues' clamp/panic
                // behavior takes over from FIFO order.
                const Tick delta =
                    std::min<Tick>(1 + id % 1000, kTickMax - q.now());
                q.scheduleIn(delta, [this, child] {
                    log.push_back(child);
                });
            }
        });
    }
};

/** Random deltas spanning same-tick to far-future without overflow. */
Tick
randomDelta(Rng &rng, Tick now)
{
    const std::uint64_t shape = rng.next() % 100;
    Tick delta;
    if (shape < 15) {
        delta = 0;   // same tick: FIFO ties
    } else if (shape < 65) {
        delta = rng.next() % 5000;   // near future: bottom regime
    } else if (shape < 90) {
        delta = rng.next() % 5'000'000;   // mid future: rungs
    } else if (shape < 99) {
        delta = rng.next() % 50'000'000'000ULL;   // far future: top
    } else {
        // Extreme sparse future: exercises maximal-span epochs. Bound
        // by the remaining tick space so now + delta cannot wrap.
        delta = rng.next() % ((kTickMax - now) / 2 + 1);
    }
    if (delta > kTickMax - now)
        delta = kTickMax - now;
    return delta;
}

TEST(EventQueueDiff, MillionsOfRandomOpsMatchReferenceHeap)
{
    const std::uint64_t seed = 0xf457'50cc'e7d1'ff01ULL;
    Rng rng(seed);

    Driver<EventQueue> ladder;
    Driver<ReferenceEventQueue> heap;

    constexpr std::uint64_t kOps = 1'200'000;
    std::uint64_t mismatches = 0;

    for (std::uint64_t op = 0; op < kOps && mismatches == 0; ++op) {
        const std::uint64_t kind = rng.next() % 100;
        if (kind < 45) {
            // schedule at an absolute tick
            const Tick when =
                ladder.q.now() + randomDelta(rng, ladder.q.now());
            const std::uint64_t id = ladder.nextId++;
            heap.nextId++;
            ladder.scheduleEvent(when, id);
            heap.scheduleEvent(when, id);
        } else if (kind < 55) {
            // scheduleIn, including delta 0
            const Tick delta = randomDelta(rng, ladder.q.now());
            const std::uint64_t id = ladder.nextId++;
            heap.nextId++;
            ladder.q.scheduleIn(delta, [d = &ladder, id] {
                d->log.push_back(id);
            });
            heap.q.scheduleIn(delta, [d = &heap, id] {
                d->log.push_back(id);
            });
        } else if (kind < 80) {
            ASSERT_EQ(ladder.q.runOne(), heap.q.runOne())
                << "op " << op << " seed " << seed;
        } else {
            // runUntil: sometimes exactly on a pending event's tick
            // (boundary), sometimes between events, sometimes far out.
            Tick limit =
                ladder.q.now() + randomDelta(rng, ladder.q.now());
            ladder.q.runUntil(limit);
            heap.q.runUntil(limit);
        }

        if (ladder.q.now() != heap.q.now() ||
            ladder.q.pending() != heap.q.pending() ||
            ladder.q.executed() != heap.q.executed() ||
            ladder.log != heap.log) {
            ++mismatches;
            ASSERT_EQ(ladder.q.now(), heap.q.now())
                << "op " << op << " seed " << seed;
            ASSERT_EQ(ladder.q.pending(), heap.q.pending())
                << "op " << op << " seed " << seed;
            ASSERT_EQ(ladder.q.executed(), heap.q.executed())
                << "op " << op << " seed " << seed;
            ASSERT_EQ(ladder.log, heap.log)
                << "op " << op << " seed " << seed;
        }
        // Keep the dispatch logs bounded: once both agree, the prefix
        // has served its purpose.
        if (ladder.log.size() > 4096) {
            ladder.log.clear();
            heap.log.clear();
        }
    }

    // Drain both completely and compare the tail.
    ASSERT_EQ(ladder.q.runAll(), heap.q.runAll());
    EXPECT_EQ(ladder.q.now(), heap.q.now());
    EXPECT_EQ(ladder.q.pending(), 0u);
    EXPECT_EQ(ladder.q.executed(), heap.q.executed());
    EXPECT_EQ(ladder.log, heap.log);
    EXPECT_GE(ladder.q.executed(), kOps / 4)
        << "op mix degenerated; the run exercised too few dispatches";
}

/** Boundary sweep: runUntil exactly on, just before and just after
 *  every bucket edge of a laddered batch. */
TEST(EventQueueDiff, RunUntilOnLadderBoundaries)
{
    Rng rng(0xb0cde7);
    Driver<EventQueue> ladder;
    Driver<ReferenceEventQueue> heap;

    // A batch wide enough to force a top spill into a real rung.
    std::vector<Tick> ticks;
    for (int i = 0; i < 3000; ++i) {
        const Tick when = 1000 + rng.next() % 1'000'000;
        const std::uint64_t id = ladder.nextId++;
        heap.nextId++;
        ladder.scheduleEvent(when, id);
        heap.scheduleEvent(when, id);
        ticks.push_back(when);
    }
    std::sort(ticks.begin(), ticks.end());
    for (std::size_t i = 0; i < ticks.size(); i += 97) {
        for (const Tick limit :
             {ticks[i] - 1, ticks[i], ticks[i] + 1}) {
            if (limit < ladder.q.now())
                continue;
            ladder.q.runUntil(limit);
            heap.q.runUntil(limit);
            ASSERT_EQ(ladder.q.now(), heap.q.now()) << "limit " << limit;
            ASSERT_EQ(ladder.q.pending(), heap.q.pending())
                << "limit " << limit;
            ASSERT_EQ(ladder.log, heap.log) << "limit " << limit;
        }
    }
    ladder.q.runAll();
    heap.q.runAll();
    EXPECT_EQ(ladder.log, heap.log);
}

} // namespace
} // namespace fsim
