/**
 * @file
 * Tests for the experiment harness itself: window accounting, lock
 * deltas, metric plumbing.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace fsim
{
namespace
{

TEST(LockDelta, SubtractsPerClass)
{
    std::map<std::string, LockClassStats> before, after;
    before["slock"].acquisitions = 10;
    before["slock"].contentions = 2;
    before["slock"].waitTicks = 100;
    after["slock"].acquisitions = 25;
    after["slock"].contentions = 7;
    after["slock"].waitTicks = 400;
    after["new.lock"].acquisitions = 3;

    auto d = lockDelta(before, after);
    EXPECT_EQ(d["slock"].acquisitions, 15u);
    EXPECT_EQ(d["slock"].contentions, 5u);
    EXPECT_EQ(d["slock"].waitTicks, 300u);
    EXPECT_EQ(d["new.lock"].acquisitions, 3u);
}

TEST(ExperimentResult, UtilHelpers)
{
    ExperimentResult r;
    r.coreUtil = {0.2, 0.8, 0.5};
    EXPECT_DOUBLE_EQ(r.maxUtil(), 0.8);
    EXPECT_DOUBLE_EQ(r.minUtil(), 0.2);
    EXPECT_NEAR(r.avgUtil(), 0.5, 1e-9);
    ExperimentResult empty;
    EXPECT_EQ(empty.maxUtil(), 0.0);
    EXPECT_EQ(empty.avgUtil(), 0.0);
}

TEST(Harness, MeasurementWindowExcludesWarmup)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 2;
    cfg.concurrencyPerCore = 30;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.02;
    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    // Served in the window must be below the all-time total.
    EXPECT_LT(r.served, bed.app().served());
    EXPECT_GT(r.served, 0u);
    // cps is per *measured* second.
    double implied = static_cast<double>(r.served) / cfg.measureSec;
    EXPECT_NEAR(r.cps, implied, implied * 0.25);
}

TEST(Harness, DeterministicAcrossRuns)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 2;
    cfg.concurrencyPerCore = 20;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.02;
    ExperimentResult a = runExperiment(cfg);
    ExperimentResult b = runExperiment(cfg);
    EXPECT_EQ(a.served, b.served);
    EXPECT_DOUBLE_EQ(a.cps, b.cps);
    EXPECT_DOUBLE_EQ(a.l3MissRate, b.l3MissRate);
}

TEST(Harness, SeedChangesOutcomeSlightly)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 2;
    cfg.concurrencyPerCore = 20;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.02;
    ExperimentResult a = runExperiment(cfg);
    cfg.machine.seed = 999;
    ExperimentResult b = runExperiment(cfg);
    // Different random streams; throughput should be in the same band.
    EXPECT_NEAR(a.cps, b.cps, a.cps * 0.3 + 1000);
}

TEST(Harness, LockCycleShareComputed)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 4;
    cfg.concurrencyPerCore = 50;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.02;
    ExperimentResult r = runExperiment(cfg);
    double total = 0.0;
    for (const auto &kv : r.lockCycleShare) {
        EXPECT_GE(kv.second, 0.0);
        EXPECT_LE(kv.second, 1.0);
        total += kv.second;
    }
    EXPECT_LE(total, 1.0);
}

TEST(Harness, HaproxyTestbedWiresBackends)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 2;
    cfg.concurrencyPerCore = 20;
    cfg.backendCount = 3;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.02;
    Testbed bed(cfg);
    ASSERT_NE(bed.backends(), nullptr);
    ExperimentResult r = bed.run();
    EXPECT_GT(r.served, 0u);
    EXPECT_GT(bed.backends()->requestsServed(), 0u);
}

TEST(Harness, NginxTestbedHasNoBackends)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 1;
    cfg.concurrencyPerCore = 5;
    Testbed bed(cfg);
    EXPECT_EQ(bed.backends(), nullptr);
}

TEST(Harness, RxPacketsTracked)
{
    ExperimentConfig cfg;
    cfg.machine.cores = 2;
    cfg.concurrencyPerCore = 20;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.02;
    ExperimentResult r = runExperiment(cfg);
    // Each served connection involves several RX packets.
    EXPECT_GT(r.rxPackets, r.served * 3);
}

} // anonymous namespace
} // namespace fsim
