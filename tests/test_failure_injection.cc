/**
 * @file
 * Failure-injection tests: wire packet loss with client give-up timers,
 * duplicate SYNs, connect() refusal, and kernel edge transitions.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace fsim
{
namespace
{

TEST(Wire, LossRateDropsRoughlyThatFraction)
{
    EventQueue eq;
    Wire wire(eq, 10);
    wire.setLossRate(0.25, 42);
    int got = 0;
    wire.attach(1, [&](const Packet &) { ++got; });
    Packet p;
    p.tuple.daddr = 1;
    for (int i = 0; i < 4000; ++i)
        wire.transmit(p, eq.now());
    eq.runAll();
    EXPECT_NEAR(got, 3000, 150);
    EXPECT_NEAR(static_cast<double>(wire.lost()), 1000.0, 150.0);
}

TEST(FailureInjection, SystemSurvivesPacketLoss)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.concurrencyPerCore = 40;
    cfg.lossRate = 0.02;
    cfg.clientTimeout = ticksFromMsec(5);
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.05;

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    // Losses abort some connections, but the closed loop keeps going and
    // the vast majority still complete.
    EXPECT_GT(bed.load().timeouts(), 0u);
    EXPECT_GT(r.served, 500u);
    EXPECT_GT(bed.load().completed(),
              bed.load().failed() * 5);
    // Conservation still holds with timeouts in the mix.
    EXPECT_EQ(bed.load().started(),
              bed.load().completed() + bed.load().failed() +
                  bed.load().inFlight());
}

TEST(FailureInjection, ProxySurvivesPacketLoss)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.concurrencyPerCore = 30;
    cfg.lossRate = 0.01;
    cfg.clientTimeout = ticksFromMsec(8);
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.05;

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    EXPECT_GT(r.served, 300u);
    EXPECT_EQ(bed.load().started(),
              bed.load().completed() + bed.load().failed() +
                  bed.load().inFlight());
}

TEST(FailureInjection, TimeoutWithoutLossIsHarmless)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.concurrencyPerCore = 30;
    cfg.clientTimeout = ticksFromMsec(20);   // generous
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.04;

    Testbed bed(cfg);
    bed.run();
    EXPECT_EQ(bed.load().timeouts(), 0u);
    EXPECT_EQ(bed.load().failed(), 0u);
}

TEST(KernelEdge, DuplicateSynDoesNotMintSecondSocket)
{
    EventQueue eq;
    Wire wire(eq, ticksFromUsec(10));
    MachineConfig mc;
    mc.cores = 2;
    mc.listenIps = 1;
    Machine m(eq, wire, mc);
    int synacks = 0;
    wire.attachRange(0xac100001, 0xac10ffff, [&](const Packet &p) {
        if (p.has(kSyn) && p.has(kAck))
            ++synacks;
    });
    KernelStack &k = m.kernel();
    int proc = k.addProcess(0);
    k.listen(proc, m.addrs()[0], 80);

    Packet syn;
    syn.tuple = FiveTuple{0xac100001, m.addrs()[0], 30000, 80};
    syn.flags = kSyn;
    std::size_t before = k.liveSockets();
    wire.transmit(syn, eq.now());
    eq.runAll();
    wire.transmit(syn, eq.now());   // client retransmission
    eq.runAll();
    EXPECT_EQ(k.liveSockets(), before + 1)
        << "retransmitted SYN must reuse the pending TCB";
    EXPECT_EQ(synacks, 2) << "but the SYN-ACK is re-sent";
}

TEST(KernelEdge, RstToSynSentAbortsConnect)
{
    EventQueue eq;
    Wire wire(eq, ticksFromUsec(10));
    MachineConfig mc;
    mc.cores = 1;
    mc.listenIps = 1;
    Machine m(eq, wire, mc);
    // A "connection refused" backend.
    wire.attach(0x0a010001, [&](const Packet &p) {
        Packet rst;
        rst.tuple = p.tuple.reversed();
        rst.flags = kRst;
        wire.transmit(rst, eq.now());
    });
    KernelStack &k = m.kernel();
    int proc = k.addProcess(0);
    k.listen(proc, m.addrs()[0], 80);
    std::size_t baseline = k.liveSockets();

    auto c = k.connect(proc, eq.now(), 0x0a010001, 80);
    ASSERT_NE(c.sock, nullptr);
    eq.runAll();
    EXPECT_EQ(k.liveSockets(), baseline)
        << "refused connection must be torn down";
}

TEST(KernelEdge, CloseInSynSentAbortsCleanly)
{
    EventQueue eq;
    Wire wire(eq, ticksFromUsec(10));
    MachineConfig mc;
    mc.cores = 1;
    mc.listenIps = 1;
    Machine m(eq, wire, mc);
    wire.attach(0x0a010001, [](const Packet &) {});   // black hole
    KernelStack &k = m.kernel();
    int proc = k.addProcess(0);
    k.listen(proc, m.addrs()[0], 80);
    std::size_t baseline = k.liveSockets();

    auto c = k.connect(proc, eq.now(), 0x0a010001, 80);
    ASSERT_NE(c.sock, nullptr);
    Port used = c.sock->rxTuple.dport;
    k.close(proc, c.t, c.fd);   // abort before the handshake completes
    eq.runAll();
    EXPECT_EQ(k.liveSockets(), baseline);
    // A fresh connect still works and gets a distinct live socket.
    auto c2 = k.connect(proc, eq.now(), 0x0a010001, 80);
    ASSERT_NE(c2.sock, nullptr);
    EXPECT_NE(c2.sock->rxTuple.dport, 0);
    (void)used;
    EXPECT_EQ(k.liveSockets(), baseline + 1);
}

} // anonymous namespace
} // namespace fsim
