/**
 * @file
 * Tests for the fault-injection subsystem (src/fault): plan grammar,
 * content-hash wire fault fates, end-to-end armed testbeds (SYN flood
 * with cookies, backend outage with proxy failover) and the determinism
 * guarantee that an armed plan keeps same-seed runs bit-identical.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "harness/experiment.hh"

namespace fsim
{
namespace
{

// ---------------------------------------------------------------- plan

TEST(FaultPlan, ParsesEveryKindAndRoundTrips)
{
    const std::string text =
        "loss_burst@0.01-0.02:rate=0.25;"
        "reorder@0.01-0.02:rate=0.1,jitter=300;"
        "duplicate@0.01-0.02:rate=0.05;"
        "syn_flood@0.02-0.03:rate=100000;"
        "backend_slow@0.01-0.03:factor=6,target=1;"
        "backend_down@0.01-0.03:target=0;"
        "atr_shrink@0.01-0.03:size=64;"
        "machine_crash@0.03-0.04:target=2,mode=blackhole;"
        "rolling_restart@0.04-0.06:drain_ms=4,down_ms=2;"
        "lb_crash@0.05-0.06:target=1;"
        "machine_degrade@0.06-0.08:"
        "target=1,factor=2.5,rate=0.08,jitter=500,flap_ms=4;"
        "net_partition@0.07-0.09:a=lb0,b=m1;"
        "seed=42";
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultPlan(text, plan, err)) << err;
    ASSERT_EQ(plan.events.size(), 12u);
    EXPECT_EQ(plan.seed, 42u);
    EXPECT_TRUE(plan.has(FaultKind::kSynFlood));
    EXPECT_TRUE(plan.has(FaultKind::kAtrShrink));
    EXPECT_EQ(plan.events[0].kind, FaultKind::kLossBurst);
    EXPECT_DOUBLE_EQ(plan.events[0].rate, 0.25);
    EXPECT_DOUBLE_EQ(plan.events[1].jitterUsec, 300.0);
    EXPECT_EQ(plan.events[4].target, 1);
    EXPECT_EQ(plan.events[6].tableSize, 64u);
    EXPECT_EQ(plan.events[7].mode, FaultEvent::CrashMode::kBlackhole);
    EXPECT_DOUBLE_EQ(plan.events[8].drainMsec, 4.0);
    EXPECT_DOUBLE_EQ(plan.events[8].downMsec, 2.0);
    EXPECT_EQ(plan.events[9].target, 1);
    EXPECT_DOUBLE_EQ(plan.events[10].factor, 2.5);
    EXPECT_DOUBLE_EQ(plan.events[10].rate, 0.08);
    EXPECT_DOUBLE_EQ(plan.events[10].jitterUsec, 500.0);
    EXPECT_DOUBLE_EQ(plan.events[10].flapMsec, 4.0);
    EXPECT_EQ(plan.events[11].partA, "lb0");
    EXPECT_EQ(plan.events[11].partB, "m1");

    // serialize -> parse is the identity on the event list.
    FaultPlan again;
    ASSERT_TRUE(parseFaultPlan(serializeFaultPlan(plan), again, err))
        << err;
    ASSERT_EQ(again.events.size(), plan.events.size());
    EXPECT_EQ(again.seed, plan.seed);
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        EXPECT_EQ(again.events[i].kind, plan.events[i].kind) << i;
        EXPECT_DOUBLE_EQ(again.events[i].startSec,
                         plan.events[i].startSec) << i;
        EXPECT_DOUBLE_EQ(again.events[i].endSec, plan.events[i].endSec)
            << i;
        EXPECT_DOUBLE_EQ(again.events[i].rate, plan.events[i].rate) << i;
        EXPECT_EQ(again.events[i].target, plan.events[i].target) << i;
        EXPECT_DOUBLE_EQ(again.events[i].factor,
                         plan.events[i].factor) << i;
        EXPECT_DOUBLE_EQ(again.events[i].jitterUsec,
                         plan.events[i].jitterUsec) << i;
        EXPECT_DOUBLE_EQ(again.events[i].flapMsec,
                         plan.events[i].flapMsec) << i;
        EXPECT_DOUBLE_EQ(again.events[i].drainMsec,
                         plan.events[i].drainMsec) << i;
        EXPECT_DOUBLE_EQ(again.events[i].downMsec,
                         plan.events[i].downMsec) << i;
        EXPECT_EQ(again.events[i].mode, plan.events[i].mode) << i;
        EXPECT_EQ(again.events[i].partA, plan.events[i].partA) << i;
        EXPECT_EQ(again.events[i].partB, plan.events[i].partB) << i;
    }
}

TEST(FaultPlan, EmptyTextIsEmptyPlan)
{
    FaultPlan plan;
    std::string err;
    EXPECT_TRUE(parseFaultPlan("", plan, err));
    EXPECT_TRUE(plan.empty());
    EXPECT_TRUE(parseFaultPlan("  ;  ", plan, err));
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(serializeFaultPlan(plan), "");
}

TEST(FaultPlan, UnknownKindErrorListsValidKinds)
{
    FaultPlan plan;
    std::string err;
    ASSERT_FALSE(parseFaultPlan("meteor_strike@0-1:rate=0.5", plan, err));
    for (const char *kind :
         {"loss_burst", "reorder", "duplicate", "syn_flood",
          "backend_slow", "backend_down", "atr_shrink",
          "machine_crash", "rolling_restart", "lb_crash",
          "machine_degrade", "net_partition"})
        EXPECT_NE(err.find(kind), std::string::npos) << err;
}

TEST(FaultPlan, RejectsMalformedEvents)
{
    FaultPlan plan;
    std::string err;
    // Missing window.
    EXPECT_FALSE(parseFaultPlan("loss_burst:rate=0.5", plan, err));
    // Backwards window.
    EXPECT_FALSE(parseFaultPlan("loss_burst@0.2-0.1:rate=0.5", plan, err));
    // Probability out of range.
    EXPECT_FALSE(parseFaultPlan("loss_burst@0-1:rate=1.5", plan, err));
    EXPECT_FALSE(parseFaultPlan("loss_burst@0-1", plan, err));
    // Unknown parameter.
    EXPECT_FALSE(parseFaultPlan("loss_burst@0-1:rate=0.5,frob=1", plan,
                                err));
    EXPECT_NE(err.find("frob"), std::string::npos);
    // Flood needs a rate; slowdowns must actually slow down.
    EXPECT_FALSE(parseFaultPlan("syn_flood@0-1", plan, err));
    EXPECT_FALSE(parseFaultPlan("backend_slow@0-1:factor=0.5", plan, err));
    // ATR clamp must be a power of two.
    EXPECT_FALSE(parseFaultPlan("atr_shrink@0-1:size=100", plan, err));
    // Degrades must name a machine, keep loss a valid probability,
    // actually slow something down, and never go negative.
    EXPECT_FALSE(parseFaultPlan("machine_degrade@0-1:factor=2", plan,
                                err));
    EXPECT_FALSE(parseFaultPlan(
        "machine_degrade@0-1:target=0,factor=0.5", plan, err));
    EXPECT_FALSE(parseFaultPlan(
        "machine_degrade@0-1:target=0,rate=1.0", plan, err));
    EXPECT_FALSE(parseFaultPlan(
        "machine_degrade@0-1:target=0,factor=1,rate=0,jitter=0", plan,
        err));
    EXPECT_NE(err.find("no-op"), std::string::npos) << err;
    EXPECT_FALSE(parseFaultPlan(
        "machine_degrade@0-1:target=0,flap_ms=-1", plan, err));
    // Partition groups must be known tokens and must differ.
    EXPECT_FALSE(parseFaultPlan("net_partition@0-1:a=lb0,b=lb0", plan,
                                err));
    EXPECT_FALSE(parseFaultPlan("net_partition@0-1:a=tower7,b=ms",
                                plan, err));
    EXPECT_NE(err.find("tower7"), std::string::npos) << err;
}

// ---------------------------------------------------------------- wire

struct WireCounters
{
    std::uint64_t delivered, lost, duplicated;
};

/** Blast @p n packets through a fresh wire armed with @p w; all inside
 *  the window. @return the fate counters. */
WireCounters
blast(const Wire::FaultWindow &w, std::uint64_t seed, int n,
      std::vector<Packet> *rx = nullptr)
{
    EventQueue eq;
    Wire wire(eq, ticksFromUsec(10));
    wire.setFaultSeed(seed);
    wire.addFaultWindow(w);
    wire.attachRange(1, 1, [rx](const Packet &p) {
        if (rx)
            rx->push_back(p);
    });
    for (int i = 0; i < n; ++i) {
        Packet p;
        p.tuple = FiveTuple{2, 1, static_cast<Port>(1024 + i), 80};
        p.flags = kAck | kPsh;
        p.payload = 100 + i;
        p.txSeq = static_cast<std::uint64_t>(i);
        wire.transmit(p, w.start + 1 + i);
    }
    eq.runAll();
    EXPECT_EQ(wire.transmitted() + wire.duplicated(),
              wire.delivered() + wire.lost() + wire.dropped() +
                  wire.inFlight())
        << "wire conservation";
    EXPECT_EQ(wire.inFlight(), 0u);
    return {wire.delivered(), wire.lost(), wire.duplicated()};
}

TEST(WireFaults, LossFatesAreContentHashesNotSequence)
{
    Wire::FaultWindow w;
    w.start = ticksFromUsec(100);
    w.end = ticksFromSeconds(1.0);
    w.lossRate = 0.3;

    WireCounters a = blast(w, 7, 500);
    EXPECT_GT(a.lost, 0u);
    EXPECT_GT(a.delivered, 0u);
    // Same packets, same seed: identical fates (determinism).
    WireCounters b = blast(w, 7, 500);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.lost, b.lost);
    // A different fault seed draws different fates.
    WireCounters c = blast(w, 8, 500);
    EXPECT_NE(a.lost, c.lost);
}

TEST(WireFaults, LossOnlyInsideTheWindow)
{
    Wire::FaultWindow w;
    w.start = ticksFromUsec(100);
    w.end = ticksFromUsec(200);
    w.lossRate = 0.9;

    EventQueue eq;
    Wire wire(eq, ticksFromUsec(10));
    wire.setFaultSeed(7);
    wire.addFaultWindow(w);
    wire.attachRange(1, 1, [](const Packet &) {});
    for (int i = 0; i < 100; ++i) {
        Packet p;
        p.tuple = FiveTuple{2, 1, static_cast<Port>(1024 + i), 80};
        p.txSeq = static_cast<std::uint64_t>(i);
        wire.transmit(p, w.end + 1 + i);   // all after the window closes
    }
    eq.runAll();
    EXPECT_EQ(wire.lost(), 0u);
    EXPECT_EQ(wire.delivered(), 100u);
}

TEST(WireFaults, DuplicateWindowDeliversExtraCopies)
{
    Wire::FaultWindow w;
    w.start = 0;
    w.end = ticksFromSeconds(1.0);
    w.dupRate = 0.5;

    std::vector<Packet> rx;
    WireCounters c = blast(w, 7, 200, &rx);
    EXPECT_GT(c.duplicated, 0u);
    EXPECT_EQ(c.delivered, 200u + c.duplicated);
    EXPECT_EQ(rx.size(), c.delivered);
}

TEST(WireFaults, ReorderDelaysButDeliversEverything)
{
    Wire::FaultWindow w;
    w.start = 0;
    w.end = ticksFromSeconds(1.0);
    w.reorderRate = 0.5;
    w.reorderJitter = ticksFromUsec(500);

    WireCounters c = blast(w, 7, 200);
    EXPECT_EQ(c.delivered, 200u);
    EXPECT_EQ(c.lost, 0u);
}

// ---------------------------------------------------------- end to end

ExperimentConfig
smallConfig(AppKind app)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.concurrencyPerCore = 50;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.03;
    cfg.checkLevel = CheckLevel::kPeriodic;
    cfg.clientTimeout = ticksFromSeconds(0.05);
    return cfg;
}

void
setPlan(ExperimentConfig &cfg, const std::string &text)
{
    std::string err;
    ASSERT_TRUE(parseFaultPlan(text, cfg.faults, err)) << err;
}

TEST(FaultEndToEnd, LossBurstRecoversViaClientRetransmission)
{
    ExperimentConfig cfg = smallConfig(AppKind::kNginx);
    setPlan(cfg, "loss_burst@0.01-0.02:rate=0.3");
    cfg.clientRtoBase = ticksFromUsec(3000);

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    EXPECT_GT(r.served, 0u);
    EXPECT_GT(bed.wire().lost(), 0u);
    EXPECT_GT(bed.load().synRetransmits() +
                  bed.load().requestRetransmits(), 0u);
    EXPECT_EQ(r.invariants.violationCount, 0u)
        << r.invariants.summary();
}

TEST(FaultEndToEnd, ArmedPlanKeepsSameSeedRunsIdentical)
{
    auto fingerprint = [] {
        ExperimentConfig cfg = smallConfig(AppKind::kNginx);
        setPlan(cfg,
                "loss_burst@0.01-0.02:rate=0.3;"
                "reorder@0.015-0.025:rate=0.2;"
                "duplicate@0.01-0.02:rate=0.1");
        cfg.clientRtoBase = ticksFromUsec(3000);
        Testbed bed(cfg);
        ExperimentResult r = bed.run();
        EXPECT_EQ(r.invariants.violationCount, 0u)
            << r.invariants.summary();
        return r.fingerprint;
    };
    EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(FaultEndToEnd, SynFloodWithCookiesKeepsServing)
{
    ExperimentConfig cfg = smallConfig(AppKind::kNginx);
    setPlan(cfg, "syn_flood@0.01-0.02:rate=100000");
    cfg.synCookies = true;
    cfg.synBacklog = 64;
    cfg.machine.kernel.synRcvdJiffies = 300;

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    const KernelStats &ks = bed.machine().kernel().stats();
    ASSERT_NE(bed.faults(), nullptr);
    ASSERT_NE(bed.faults()->flood(), nullptr);
    EXPECT_GT(bed.faults()->flood()->synsSent(), 0u);
    EXPECT_GT(ks.synCookiesSent, 0u) << "flood must trip cookie mode";
    EXPECT_GT(ks.synCookiesValidated, 0u)
        << "legit clients establish through cookies";
    EXPECT_GT(r.served, 0u) << "goodput must not collapse to zero";
    EXPECT_EQ(r.invariants.violationCount, 0u)
        << r.invariants.summary();
}

TEST(FaultEndToEnd, SynFloodWithoutCookiesStarvesAcceptance)
{
    ExperimentConfig cfg = smallConfig(AppKind::kNginx);
    setPlan(cfg, "syn_flood@0.01-0.02:rate=100000");
    cfg.synBacklog = 64;   // cookies off: queue fills, SYNs drop
    cfg.machine.kernel.synRcvdJiffies = 300;

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    (void)r;
    EXPECT_GT(bed.machine().kernel().stats().synDropped, 0u);
    EXPECT_EQ(bed.machine().kernel().stats().synCookiesSent, 0u);
}

TEST(FaultEndToEnd, BackendOutageIsRiddenOutByProxyFailover)
{
    ExperimentConfig cfg = smallConfig(AppKind::kHaproxy);
    setPlan(cfg, "backend_down@0.008-0.02:target=0");
    cfg.backendTimeout = ticksFromUsec(2000);

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    ASSERT_NE(bed.backends(), nullptr);
    EXPECT_GT(bed.backends()->outageDrops(), 0u)
        << "outage window must actually swallow traffic";
    EXPECT_GT(r.served, 0u)
        << "retry+ejection must keep the service up";
    EXPECT_EQ(r.invariants.violationCount, 0u)
        << r.invariants.summary();
}

TEST(FaultEndToEnd, BackendEventsIgnoredWithoutBackends)
{
    ExperimentConfig cfg = smallConfig(AppKind::kNginx);
    setPlan(cfg, "backend_down@0.008-0.02:target=0");

    Testbed bed(cfg);
    bed.run();
    ASSERT_NE(bed.faults(), nullptr);
    EXPECT_EQ(bed.faults()->ignoredEvents(), 1);
}

} // anonymous namespace
} // namespace fsim
