/**
 * @file
 * Unit tests for the lowest-available-fd bitmap allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"
#include "vfs/fd_table.hh"

namespace fsim
{
namespace
{

TEST(FdTable, StartsAtFirstFd)
{
    FdTable t(3);
    EXPECT_EQ(t.alloc(), 3);
    EXPECT_EQ(t.alloc(), 4);
    EXPECT_EQ(t.alloc(), 5);
}

TEST(FdTable, LowestFreeReused)
{
    FdTable t(3);
    int a = t.alloc();
    int b = t.alloc();
    int c = t.alloc();
    (void)c;
    EXPECT_TRUE(t.free(b));
    EXPECT_TRUE(t.free(a));
    // POSIX rule: the lowest available descriptor comes back first.
    EXPECT_EQ(t.alloc(), a);
    EXPECT_EQ(t.alloc(), b);
}

TEST(FdTable, DoubleFreeRejected)
{
    FdTable t;
    int fd = t.alloc();
    EXPECT_TRUE(t.free(fd));
    EXPECT_FALSE(t.free(fd));
}

TEST(FdTable, FreeingReservedFdsRejected)
{
    FdTable t(3);
    EXPECT_FALSE(t.free(0));
    EXPECT_FALSE(t.free(2));
    EXPECT_FALSE(t.free(-1));
    EXPECT_FALSE(t.free(100000));
}

TEST(FdTable, InUseTracksState)
{
    FdTable t;
    EXPECT_FALSE(t.inUse(5));
    int fd = t.alloc();
    EXPECT_TRUE(t.inUse(fd));
    t.free(fd);
    EXPECT_FALSE(t.inUse(fd));
    EXPECT_FALSE(t.inUse(-1));
}

TEST(FdTable, GrowsBeyondInitialWords)
{
    FdTable t(0);
    std::set<int> fds;
    for (int i = 0; i < 1000; ++i)
        fds.insert(t.alloc());
    EXPECT_EQ(fds.size(), 1000u);
    EXPECT_EQ(*fds.begin(), 0);
    EXPECT_EQ(*fds.rbegin(), 999);
    EXPECT_EQ(t.openCount(), 1000);
    EXPECT_EQ(t.highWater(), 1000);
}

TEST(FdTable, OpenCountBalances)
{
    FdTable t;
    int a = t.alloc();
    int b = t.alloc();
    EXPECT_EQ(t.openCount(), 2);
    t.free(a);
    t.free(b);
    EXPECT_EQ(t.openCount(), 0);
}

TEST(FdTable, DenseAfterChurn)
{
    // The HAProxy assumption (paper section 5): fds never exceed the
    // concurrent connection count, because the lowest fd is always
    // reused. Steady-state churn must not grow the high-water mark.
    FdTable t(0);
    std::vector<int> open;
    for (int i = 0; i < 64; ++i)
        open.push_back(t.alloc());
    int high = t.highWater();
    for (int round = 0; round < 200; ++round) {
        t.free(open[round % 64]);
        open[round % 64] = t.alloc();
    }
    EXPECT_EQ(t.highWater(), high);
}

/** Property: the allocator always returns the global minimum free fd. */
class FdLowestProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FdLowestProperty, AlwaysLowest)
{
    Rng rng(GetParam());
    FdTable t(3);
    std::set<int> ref;   // currently allocated
    for (int step = 0; step < 3000; ++step) {
        if (ref.empty() || rng.chance(0.6)) {
            int fd = t.alloc();
            // fd must be the smallest integer >= 3 not in ref.
            int expect = 3;
            while (ref.count(expect))
                ++expect;
            EXPECT_EQ(fd, expect);
            ref.insert(fd);
        } else {
            auto it = ref.begin();
            std::advance(it, rng.range(ref.size()));
            EXPECT_TRUE(t.free(*it));
            ref.erase(it);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdLowestProperty,
                         ::testing::Values(5, 21, 777));

} // anonymous namespace
} // namespace fsim
