/**
 * @file
 * Tests for the secondary paper features: RFD rule-3 precise
 * classification end-to-end (non-well-known service/backend ports), the
 * nginx accept mutex, randomized RFD hash bits under load, and the
 * legacy port-bind serialization.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace fsim
{
namespace
{

TEST(RfdRule3, HighPortsStillGetCompleteLocality)
{
    // Service on 8080 and backends on 9090: neither port is well-known,
    // so RFD classification must fall through to rule 3 (the listener
    // probe) for passive traffic and classify backend replies as active
    // by exclusion. Everything must still be single-core.
    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 4;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.machine.kernel.rfdPrecise = true;
    cfg.machine.servicePort = 8080;
    cfg.backendPort = 9090;
    cfg.concurrencyPerCore = 40;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.03;

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    EXPECT_GT(r.served, 100u);
    EXPECT_EQ(r.clientFailures, 0u);
    for (const Socket *s : bed.machine().kernel().allSockets()) {
        if (s->kind != SockKind::kConnection)
            continue;
        EXPECT_LE(s->touchedCount(), 1)
            << "rule-3 misclassification broke locality for socket "
            << s->id;
    }
    for (const auto &kv : r.locks)
        EXPECT_EQ(kv.second.contentions, 0u) << kv.first;
}

TEST(RfdRule3, RandomizedBitsPreserveLocality)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 4;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.machine.kernel.rfdRandomBits = true;
    cfg.concurrencyPerCore = 40;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.03;

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    EXPECT_GT(r.served, 100u);
    for (const Socket *s : bed.machine().kernel().allSockets()) {
        if (s->kind == SockKind::kConnection) {
            EXPECT_LE(s->touchedCount(), 1);
        }
    }
}

TEST(AcceptMutex, SerializesAcceptsButStillServes)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 4;
    cfg.machine.kernel = KernelConfig::base2632();
    cfg.acceptMutex = true;
    cfg.concurrencyPerCore = 40;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.04;

    ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.served, 100u);
    EXPECT_EQ(r.clientFailures, 0u);
}

TEST(AcceptMutex, CostsThroughputOnBaseline)
{
    auto run_with = [](bool mutex) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = 8;
        cfg.machine.kernel = KernelConfig::base2632();
        cfg.acceptMutex = mutex;
        cfg.concurrencyPerCore = 120;
        cfg.warmupSec = 0.02;
        cfg.measureSec = 0.05;
        return runExperiment(cfg).cps;
    };
    double with = run_with(true);
    double without = run_with(false);
    // The mutex serializes accept: it must not *help* at this scale.
    EXPECT_LE(with, without * 1.05);
}

TEST(PortBind, StockBaselineSerializesEphemeralPorts)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 8;
    cfg.machine.kernel = KernelConfig::base2632();
    cfg.concurrencyPerCore = 120;
    cfg.warmupSec = 0.02;
    cfg.measureSec = 0.05;
    ExperimentResult r = runExperiment(cfg);
    ASSERT_TRUE(r.locks.count("portbind.lock"));
    EXPECT_GT(r.locks.at("portbind.lock").acquisitions, 100u);

    // Fastsocket's per-core port stripes never touch the global lock.
    cfg.machine.kernel = KernelConfig::fastsocket();
    ExperimentResult rf = runExperiment(cfg);
    EXPECT_EQ(rf.locks.at("portbind.lock").acquisitions, 0u);
}

TEST(ServicePorts, MachineCanServeArbitraryPort)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.servicePort = 8080;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.concurrencyPerCore = 30;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.03;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.served, 50u);
    EXPECT_EQ(r.clientFailures, 0u);
}

TEST(KeepAlive, MultipleRequestsPerConnection)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.requestsPerConn = 8;
    cfg.concurrencyPerCore = 30;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.04;

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    EXPECT_EQ(r.clientFailures, 0u);
    EXPECT_GT(r.rps, r.cps * 6.0)
        << "each connection should carry ~8 requests";
    // Establishment work amortizes: accepted conns << responses served.
    const KernelStats &ks = bed.machine().kernel().stats();
    EXPECT_LT(ks.acceptedConns, bed.app().served() / 4);
}

TEST(KeepAlive, ClientClosesFirstSoServerAvoidsTimeWait)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::base2632();
    cfg.requestsPerConn = 4;
    cfg.concurrencyPerCore = 20;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.05;

    Testbed bed(cfg);
    bed.run();
    const KernelStats &ks = bed.machine().kernel().stats();
    EXPECT_GT(ks.socketsDestroyed, 50u);
    EXPECT_EQ(ks.timeWaitReaped, 0u)
        << "passive close must not leave server-side TIME_WAIT";
}

TEST(KeepAlive, LongLivedNarrowsTheKernelGap)
{
    // The section-1 claim, as a property: the fast/base requests-per-
    // second ratio shrinks when connections carry many requests.
    auto ratio = [](int reqs) {
        double rps[2];
        for (int k = 0; k < 2; ++k) {
            ExperimentConfig cfg;
            cfg.app = AppKind::kNginx;
            // 16 cores: the scale where the baseline is genuinely
            // contention-bound on connection metadata, which is what
            // keep-alive amortizes away.
            cfg.machine.cores = 16;
            cfg.machine.kernel = k == 0 ? KernelConfig::base2632()
                                        : KernelConfig::fastsocket();
            cfg.requestsPerConn = reqs;
            cfg.concurrencyPerCore = 80;
            cfg.warmupSec = 0.015;
            cfg.measureSec = 0.04;
            rps[k] = runExperiment(cfg).rps;
        }
        return rps[1] / rps[0];
    };
    double short_lived = ratio(1);
    double long_lived = ratio(32);
    EXPECT_LT(long_lived, short_lived * 0.8);
    EXPECT_LT(long_lived, 2.0)
        << "metadata contention should amortize away; the residual gap "
           "is per-packet cache bouncing, not TCB management";
}

} // anonymous namespace
} // namespace fsim
