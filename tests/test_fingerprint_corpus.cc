/**
 * @file
 * Fingerprint regression corpus: the determinism fingerprints of a
 * fixed set of workloads are pinned to committed constants.
 *
 * The determinism tests elsewhere prove a run reproduces ITSELF
 * (same-seed double runs match). This corpus pins something stronger:
 * runs reproduce the committed HISTORY. Any change to the DES core —
 * event-queue replacement, tie-break handling, timer bucketing, RNG
 * stream assignment — that silently reorders events will shift one of
 * these fingerprints even when every invariant still holds. That is
 * exactly the failure mode a priority-queue swap can introduce, so
 * this test is the tripwire for the ladder-queue core.
 *
 * Two pools:
 *  - every committed fuzz reproducer in tests/corpus/*.scn, replayed
 *    through the scenario runner (invariants armed, double-run);
 *  - quick testbed configs shaped like the paper benches (fig3
 *    haproxy, fig4 nginx, million-conn mixed-lifetime).
 *
 * When a fingerprint change is INTENDED (a semantic change to the
 * simulation, a new cost model), re-pin by running with
 * --gtest_also_run_disabled_tests=0 and pasting the "actual" values
 * this test prints on failure; say why in the commit message.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "check/scenario.hh"
#include "harness/experiment.hh"

#ifndef FSIM_CORPUS_DIR
#error "build must define FSIM_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace fsim
{
namespace
{

struct ScenarioPin
{
    const char *file;            //!< name under tests/corpus/
    std::uint64_t fingerprint;   //!< pinned ScenarioResult fingerprint
};

// Pinned history for every committed fuzz reproducer. Keep in sync
// with tests/corpus/: a new .scn lands here with its first fingerprint.
const ScenarioPin kScenarioPins[] = {
    {"atr_clamp_reorder_fastsocket.scn", 0x714b59c3d4918374},
    {"cookie_flood_small_backlog.scn", 0x85e4fcf5e74957cc},
    {"keepalive_partial_features.scn", 0x286ea8240e94c287},
    {"loss_burst_client_retx.scn", 0xfbca52dfacf68bff},
    {"lossy_haproxy.scn", 0xb0e03df2826ac200},
    {"lossy_tiny_backlog_haproxy.scn", 0x9516da1f5b56caa4},
    {"proxy_port_exhaustion_keepalive.scn", 0x74fb8ad68dc340c},
    {"reuseport_uma_mutex.scn", 0x522a554bd9d7942f},
    {"timewait_tuple_collision_retry.scn", 0xfaa3552135bdabe4},
    {"tiny_backlog_flood.scn", 0xd00b5d240b5378ec},
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(FingerprintCorpus, ScenarioReproducersMatchPinnedHistory)
{
    for (const ScenarioPin &pin : kScenarioPins) {
        const std::string path =
            std::string(FSIM_CORPUS_DIR) + "/" + pin.file;
        Scenario s;
        std::string err;
        ASSERT_TRUE(parseScenario(readFile(path), s, err))
            << pin.file << ": " << err;
        ScenarioResult r = runScenario(s);
        EXPECT_TRUE(r.drained) << pin.file;
        EXPECT_TRUE(r.deterministic) << pin.file;
        EXPECT_TRUE(r.invariants.ok()) << pin.file;
        EXPECT_EQ(r.fingerprint, pin.fingerprint)
            << pin.file << ": actual 0x" << std::hex << r.fingerprint
            << " (re-pin only for intended semantic changes)";
    }
}

struct BenchPin
{
    const char *label;
    std::uint64_t fingerprint;
};

/** Quick fig4-shaped nginx run (4 cores, fastsocket). */
ExperimentConfig
fig4Config()
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 4;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.machine.seed = 42;
    cfg.concurrencyPerCore = 100;
    cfg.warmupSec = 0.02;
    cfg.measureSec = 0.05;
    return cfg;
}

/** Quick fig3-shaped haproxy run (proxy tier in front of backends). */
ExperimentConfig
fig3Config()
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 4;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.machine.seed = 42;
    cfg.backendCount = 4;
    cfg.concurrencyPerCore = 100;
    cfg.warmupSec = 0.02;
    cfg.measureSec = 0.05;
    return cfg;
}

/** Quick million-conn-shaped run: mixed lifetimes, parked think
 *  timers, tight backlogs — the workload the ladder queue is sized
 *  by, scaled down to test time. */
ExperimentConfig
millionConnConfig()
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 8;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.machine.seed = 42;
    cfg.machine.traceEnabled = false;
    cfg.longLivedPermille = 900;
    cfg.longLivedRequests = 2;
    cfg.longLivedThink = ticksFromSeconds(30.0);
    cfg.listenBacklog = 1024;
    cfg.synBacklog = 4096;
    cfg.concurrencyPerCore = 100;
    cfg.warmupSec = 0.02;
    cfg.measureSec = 0.05;
    return cfg;
}

TEST(FingerprintCorpus, QuickBenchConfigsMatchPinnedHistory)
{
    struct Row
    {
        BenchPin pin;
        ExperimentConfig cfg;
    } rows[] = {
        {{"fig4-nginx", 0xd0d84453b05e7ba8}, fig4Config()},
        {{"fig3-haproxy", 0xd36c263eedb86b41}, fig3Config()},
        {{"million-conn", 0x7beaa41310c83bf9}, millionConnConfig()},
    };
    for (Row &row : rows) {
        Testbed bed(row.cfg);
        ExperimentResult r = bed.run();
        EXPECT_NE(r.fingerprint, 0u) << row.pin.label;
        EXPECT_EQ(r.fingerprint, row.pin.fingerprint)
            << row.pin.label << ": actual 0x" << std::hex
            << r.fingerprint
            << " (re-pin only for intended semantic changes)";
    }
}

} // namespace
} // namespace fsim
