/**
 * @file
 * Fleet-tier integration: N machines behind the L4 balancer tier.
 *
 * Covers the FleetTestbed orchestration surface — steering, drain
 * semantics, crash/restart with probe-driven ejection and readmission,
 * VIP failover — plus fingerprint determinism on both kernels, and the
 * single-machine Proxy's health breaker when a *backend machine*
 * disappears mid-connection (full packet loss, not a brownout).
 */

#include <gtest/gtest.h>

#include "app/proxy.hh"
#include "fleet/fleet.hh"

namespace fsim
{
namespace
{

FleetConfig
smallFleet(const KernelConfig &kernel, int machines = 3,
           int balancers = 2)
{
    FleetConfig fc;
    fc.serverMachines = machines;
    fc.balancers = balancers;
    fc.base.app = AppKind::kNginx;
    fc.base.machine.cores = 2;
    fc.base.machine.kernel = kernel;
    fc.base.machine.traceEnabled = false;
    fc.base.concurrencyPerCore = 20;
    fc.base.warmupSec = 0.005;
    fc.base.measureSec = 0.04;
    fc.base.statWindows = 4;
    fc.base.checkLevel = CheckLevel::kPeriodic;
    fc.base.clientTimeout = ticksFromMsec(30);
    fc.base.clientRtoBase = ticksFromUsec(8000);
    return fc;
}

const KernelConfig kBothKernels[2] = {KernelConfig::base2632(),
                                      KernelConfig::fastsocket()};

TEST(Fleet, AddressPlanDoesNotOverlap)
{
    // 64 machines x 256 addrs, 8 VIPs, 8 NAT addrs: all disjoint.
    EXPECT_LT(FleetTestbed::machineBase(63) + 0xff,
              FleetTestbed::natAddr(0));
    EXPECT_LT(FleetTestbed::natAddr(7), FleetTestbed::vipAddr(0));
    for (int s = 1; s < 64; ++s)
        EXPECT_GE(FleetTestbed::machineBase(s),
                  FleetTestbed::machineBase(s - 1) + 0x100);
}

TEST(Fleet, EndToEndServiceAndFlowConservationBothKernels)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetTestbed bed(smallFleet(k));
        ExperimentResult r = bed.run();
        EXPECT_GT(r.served, 500u);
        EXPECT_TRUE(r.fleet.enabled);
        EXPECT_GT(r.fleet.flowsCreated, 0u);
        EXPECT_EQ(r.fleet.flowsCreated,
                  r.fleet.flowsRetired + r.fleet.flowsActive);
        EXPECT_EQ(r.invariants.violationCount, 0u)
            << r.invariants.summary();
        // Consistent hash spreads flows across every machine.
        for (int s = 0; s < bed.machineCount(); ++s) {
            std::uint64_t on = 0;
            for (int b = 0; b < bed.balancerCount(); ++b)
                on += bed.balancer(b).activeFlows(s);
            EXPECT_TRUE(bed.machineUp(s));
            (void)on;
        }
    }
}

TEST(Fleet, SameSeedSameFingerprintBothKernels)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetConfig fc = smallFleet(k);
        FleetTestbed a(fc);
        FleetTestbed b(fc);
        ExperimentResult ra = a.run();
        ExperimentResult rb = b.run();
        EXPECT_EQ(ra.fingerprint, rb.fingerprint);
        EXPECT_EQ(a.currentFingerprint(), b.currentFingerprint());

        FleetConfig other = fc;
        other.base.machine.seed += 17;
        FleetTestbed c(other);
        ExperimentResult rc = c.run();
        EXPECT_NE(ra.fingerprint, rc.fingerprint);
    }
}

TEST(Fleet, RollingRestartDrainsEveryMachineWithoutLoss)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetTestbed bed(smallFleet(k));
        EventQueue &eq = bed.eventQueue();
        bed.startLoad();
        bed.runUntilChecked(ticksFromMsec(5));
        bed.beginRollingRestart(/*drainDeadline=*/ticksFromMsec(10),
                                /*downtime=*/ticksFromMsec(2));
        EXPECT_TRUE(bed.rollingRestartActive());
        bed.runUntilChecked(eq.now() + ticksFromMsec(60));
        EXPECT_FALSE(bed.rollingRestartActive());
        EXPECT_EQ(bed.restarts(),
                  static_cast<std::uint64_t>(bed.machineCount()));
        ExperimentResult r = bed.collect();
        // Planned drains wait for in-flight flows: nothing is killed.
        EXPECT_EQ(r.fleet.undrainedFlows, 0u);
        EXPECT_EQ(r.fleet.drainsStarted, r.fleet.drainsCompleted);
        EXPECT_EQ(r.fleet.drainsCompleted,
                  static_cast<std::uint64_t>(bed.machineCount() *
                                             bed.balancerCount()));
        // Every machine came back and was readmitted by probes.
        for (int s = 0; s < bed.machineCount(); ++s) {
            EXPECT_TRUE(bed.machineUp(s));
            for (int b = 0; b < bed.balancerCount(); ++b)
                EXPECT_TRUE(bed.balancer(b).healthy(s));
        }
        EXPECT_EQ(r.invariants.violationCount, 0u)
            << r.invariants.summary();
    }
}

TEST(Fleet, BlackholeCrashIsEjectedAndReadmittedAfterRestart)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetTestbed bed(smallFleet(k));
        EventQueue &eq = bed.eventQueue();
        bed.startLoad();
        bed.runUntilChecked(ticksFromMsec(5));

        bed.crashMachine(1, FaultEvent::CrashMode::kBlackhole);
        EXPECT_FALSE(bed.machineUp(1));
        // Probe failures must mark the target down on every balancer.
        bed.runUntilChecked(eq.now() + ticksFromMsec(15));
        for (int b = 0; b < bed.balancerCount(); ++b)
            EXPECT_FALSE(bed.balancer(b).healthy(1));

        const std::uint64_t beforeRestart = bed.load().completed();
        bed.restartMachine(1);
        bed.runUntilChecked(eq.now() + ticksFromMsec(20));
        EXPECT_TRUE(bed.machineUp(1));
        for (int b = 0; b < bed.balancerCount(); ++b)
            EXPECT_TRUE(bed.balancer(b).healthy(1));
        EXPECT_GT(bed.load().completed(), beforeRestart);

        ExperimentResult r = bed.collect();
        EXPECT_EQ(r.fleet.crashes, 1u);
        EXPECT_EQ(r.fleet.restarts, 1u);
        EXPECT_GE(r.fleet.ejections,
                  static_cast<std::uint64_t>(bed.balancerCount()));
        EXPECT_GE(r.fleet.readmissions,
                  static_cast<std::uint64_t>(bed.balancerCount()));
        EXPECT_GT(r.fleet.blackholed, 0u)
            << "a blackhole corpse must swallow in-flight packets";
        EXPECT_EQ(r.invariants.violationCount, 0u)
            << r.invariants.summary();
    }
}

TEST(Fleet, RstCrashAnswersInFlightPacketsWithResets)
{
    FleetTestbed bed(smallFleet(KernelConfig::fastsocket()));
    EventQueue &eq = bed.eventQueue();
    bed.startLoad();
    bed.runUntilChecked(ticksFromMsec(5));
    bed.crashMachine(0, FaultEvent::CrashMode::kRst);
    bed.runUntilChecked(eq.now() + ticksFromMsec(10));
    ExperimentResult r = bed.collect();
    EXPECT_GT(r.fleet.corpseRsts, 0u)
        << "an rst-mode corpse must answer in-flight packets";
    EXPECT_EQ(r.fleet.blackholed, 0u);
}

TEST(Fleet, BalancerCrashFailsVipOverToPeer)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetTestbed bed(smallFleet(k));
        EventQueue &eq = bed.eventQueue();
        bed.startLoad();
        bed.runUntilChecked(ticksFromMsec(5));

        bed.crashBalancer(0);
        // Past the takeover delay the peer owns VIP 0; the closed loop
        // must keep completing connections addressed to it.
        bed.runUntilChecked(eq.now() + ticksFromMsec(10));
        EXPECT_EQ(bed.vipTakeovers(), 1u);
        const std::uint64_t mid = bed.load().completed();
        bed.runUntilChecked(eq.now() + ticksFromMsec(10));
        EXPECT_GT(bed.load().completed(), mid);

        bed.restoreBalancer(0);
        bed.runUntilChecked(eq.now() + ticksFromMsec(10));
        ExperimentResult r = bed.collect();
        EXPECT_EQ(r.fleet.lbCrashes, 1u);
        EXPECT_EQ(r.fleet.vipTakeovers, 1u);
        EXPECT_EQ(r.invariants.violationCount, 0u)
            << r.invariants.summary();
    }
}

TEST(Fleet, DrainRefusesNewFlowsAndCompletesInFlight)
{
    FleetTestbed bed(smallFleet(KernelConfig::fastsocket()));
    EventQueue &eq = bed.eventQueue();
    bed.startLoad();
    bed.runUntilChecked(ticksFromMsec(5));

    for (int b = 0; b < bed.balancerCount(); ++b)
        bed.balancer(b).startDrain(1);
    // Give in-flight flows ample time to finish, then settle the drain.
    bed.runUntilChecked(eq.now() + ticksFromMsec(10));
    for (int b = 0; b < bed.balancerCount(); ++b) {
        EXPECT_EQ(bed.balancer(b).activeFlows(1), 0u)
            << "a draining target must bleed to zero active flows";
        EXPECT_EQ(bed.balancer(b).finishDrain(1), 0u);
    }
    // Service continued on the remaining machines throughout.
    const std::uint64_t before = bed.load().completed();
    bed.runUntilChecked(eq.now() + ticksFromMsec(5));
    EXPECT_GT(bed.load().completed(), before);
}

TEST(Fleet, BalancerConfigValidationDies)
{
    EventQueue eq;
    Wire fabric(eq, ticksFromUsec(10));
    L4Balancer::Config base;
    base.vip = FleetTestbed::vipAddr(0);
    base.natIp = FleetTestbed::natAddr(0);

    // Flow table must fit the NAT-allocatable port span.
    L4Balancer::Config noFlows = base;
    noFlows.maxFlows = 0;
    EXPECT_DEATH({ L4Balancer lb(eq, fabric, noFlows); (void)lb; },
                 "maxFlows");

    // Each probe must resolve before the next round fires.
    L4Balancer::Config lateProbe = base;
    lateProbe.probeInterval = ticksFromMsec(2);
    lateProbe.probeTimeout = ticksFromMsec(2);
    EXPECT_DEATH({ L4Balancer lb(eq, fabric, lateProbe); (void)lb; },
                 "probeTimeout");

    // Score mode is built from probe evidence; probing can't be off.
    L4Balancer::Config blindScore = base;
    blindScore.healthMode = L4Balancer::HealthMode::kScore;
    blindScore.probeInterval = 0;
    EXPECT_DEATH({ L4Balancer lb(eq, fabric, blindScore); (void)lb; },
                 "requires probing");
}

/**
 * A flapping gray machine (healthy<->degraded every half flap period)
 * must be held out by hysteresis, not ejected and readmitted once per
 * flap cycle: the clear streak resets every time a degraded half-period
 * taints a probe round, so readmission waits for the fault to end.
 */
TEST(Fleet, FlappingDegradeHoldsEjectionWithoutOscillating)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetConfig fc = smallFleet(k);
        fc.healthMode = L4Balancer::HealthMode::kScore;
        fc.base.measureSec = 0.055;
        std::string err;
        // 24ms flapping degrade on machine 1: ~5ms flap period against
        // 2ms probe rounds, so probes sample both phases.
        ASSERT_TRUE(parseFaultPlan(
            "machine_degrade@0.008-0.032:"
            "target=1,factor=3,rate=0.25,jitter=600,flap_ms=5",
            fc.base.faults, err))
            << err;

        FleetTestbed bed(fc);
        ExperimentResult r = bed.run();
        EXPECT_GT(r.fleet.flapTransitions, 0u) << "flap transitions must fire";
        const std::uint64_t lbs =
            static_cast<std::uint64_t>(bed.balancerCount());
        // Detected at all...
        EXPECT_GE(r.fleet.scoreEjections, lbs)
            << "every balancer should eject the flapping machine once";
        // ...but held: ~5 flap cycles must not each cost an ejection.
        EXPECT_LE(r.fleet.scoreEjections, 2 * lbs)
            << "hysteresis failed: one ejection per flap cycle";
        EXPECT_GE(r.fleet.readmissions, lbs);
        // The fault cleared 23ms before the run ended: readmitted.
        for (int b = 0; b < bed.balancerCount(); ++b)
            EXPECT_TRUE(bed.balancer(b).healthy(1));
        EXPECT_EQ(r.invariants.violationCount, 0u)
            << r.invariants.summary();
    }
}

TEST(Fleet, DegradeAndPartitionKeepSameSeedRunsIdentical)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetConfig fc = smallFleet(k);
        fc.healthMode = L4Balancer::HealthMode::kScore;
        std::string err;
        ASSERT_TRUE(parseFaultPlan(
            "machine_degrade@0.008-0.030:"
            "target=1,factor=2.5,rate=0.1,jitter=500,flap_ms=5;"
            "net_partition@0.012-0.025:a=lb0,b=m2",
            fc.base.faults, err))
            << err;

        FleetTestbed a(fc);
        FleetTestbed b(fc);
        ExperimentResult ra = a.run();
        ExperimentResult rb = b.run();
        EXPECT_EQ(ra.fingerprint, rb.fingerprint)
            << "degrade/partition arming must stay deterministic";
        EXPECT_GT(ra.fleet.degradesApplied, 0u);
        EXPECT_GT(ra.fleet.partitionDropped, 0u)
            << "the partition window should blackhole lb0<->m2 traffic";

        FleetConfig other = fc;
        other.base.machine.seed += 29;
        FleetTestbed c(other);
        ExperimentResult rc = c.run();
        EXPECT_NE(ra.fingerprint, rc.fingerprint);
    }
}

/**
 * Satellite coverage: the single-machine Proxy's health breaker when a
 * backend machine is lost outright mid-connection. The outage starts
 * while sessions are in flight, so their backend legs go half-open and
 * must be accounted as timeouts (not leaked); after the machine comes
 * back, probe traffic readmits it.
 */
TEST(Fleet, ProxyEjectsAndReadmitsLostBackendMachineBothKernels)
{
    for (const KernelConfig &k : kBothKernels) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kHaproxy;
        cfg.machine.cores = 2;
        cfg.machine.kernel = k;
        cfg.machine.traceEnabled = false;
        cfg.concurrencyPerCore = 30;
        cfg.backendCount = 2;
        cfg.backendTimeout = ticksFromMsec(2);
        cfg.clientTimeout = ticksFromMsec(20);
        cfg.warmupSec = 0.01;   // sessions in flight before the loss
        cfg.measureSec = 0.08;
        cfg.checkLevel = CheckLevel::kPeriodic;
        std::string err;
        // Backend machine 0 vanishes at t=10ms (mid-connection for the
        // warmed-up closed loop) and returns at t=50ms.
        ASSERT_TRUE(parseFaultPlan("backend_down@0.01-0.05:target=0",
                                   cfg.faults, err))
            << err;

        Testbed bed(cfg);
        ExperimentResult r = bed.run();
        auto *px = dynamic_cast<Proxy *>(&bed.app());
        ASSERT_NE(px, nullptr);

        // Half-open backend legs are accounted, not leaked: the legs
        // cut mid-exchange surface as timeouts, and the breaker trips.
        EXPECT_GT(px->backendTimeouts(), 0u);
        EXPECT_GE(px->backendEjections(), 1u);
        // Recovery: the machine is probed back in and ends admitted.
        EXPECT_GE(px->backendReadmissions(), 1u);
        EXPECT_FALSE(px->backendEjected(0))
            << "backend 0 must be readmitted after the outage ends";
        EXPECT_FALSE(px->backendEjected(1));
        // The un-lost backend carried the fleet through the outage.
        EXPECT_GT(r.served, 200u);
        EXPECT_EQ(r.invariants.violationCount, 0u)
            << r.invariants.summary();
    }
}

} // anonymous namespace
} // namespace fsim
