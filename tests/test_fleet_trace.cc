/**
 * @file
 * Distributed-trace context survival across the balancer tier.
 *
 * The 64-bit trace id a client mints must ride every packet through
 * the L4 NAT rewrite and come back out attached to the server
 * machine's connection span — across steady service, a VIP failover
 * mid-flow, and a rolling-restart drain — on both kernels, without
 * perturbing the behavioral fingerprint.
 */

#include <gtest/gtest.h>

#include "fault/fault_injector.hh"
#include "fleet/fleet.hh"

namespace fsim
{
namespace
{

FleetConfig
tracedFleet(const KernelConfig &kernel)
{
    FleetConfig fc;
    fc.serverMachines = 3;
    fc.balancers = 2;
    fc.base.app = AppKind::kNginx;
    fc.base.machine.cores = 2;
    fc.base.machine.kernel = kernel;
    fc.base.machine.traceEnabled = true;
    fc.base.concurrencyPerCore = 20;
    fc.base.warmupSec = 0.005;
    fc.base.measureSec = 0.04;
    fc.base.statWindows = 4;
    fc.base.checkLevel = CheckLevel::kPeriodic;
    fc.base.clientTimeout = ticksFromMsec(30);
    fc.base.clientRtoBase = ticksFromUsec(8000);
    // Open loop so the launcher can be stopped for the settle phase
    // (a closed loop would relaunch forever and race the FIN gates).
    fc.openLoopRate = 30'000.0;
    return fc;
}

/** Stop launching, drain in-flight teardowns, re-collect. Without
 *  this, requests finishing in the last RTT legitimately lack a
 *  server span and the lossless-stitching checks would race. */
ExperimentResult
settle(FleetTestbed &bed)
{
    bed.load().setOpenLoopRate(0.0);
    bed.runUntilChecked(bed.eventQueue().now() + ticksFromMsec(20));
    return bed.collect();
}

/** Successful client requests with no server-machine span: must be
 *  zero after settle — every served request was served by SOMEONE. */
std::uint64_t
unstitchedOk(const FleetTraceLog &log)
{
    std::uint64_t n = 0;
    for (const auto &kv : log.records())
        if (kv.second.clientDone && kv.second.ok && !kv.second.stitched)
            ++n;
    return n;
}

const KernelConfig kBothKernels[2] = {KernelConfig::base2632(),
                                      KernelConfig::fastsocket()};

TEST(FleetTrace, ClientTraceIdSurvivesNatRewriteBothKernels)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetTestbed bed(tracedFleet(k));
        bed.run();
        ExperimentResult r = settle(bed);

        const FleetTraceLog &log = bed.traceLog();
        EXPECT_GT(r.fleet.tracesStarted, 500u);
        // Exact accounting: every launched connection minted a trace,
        // every finished one closed it.
        EXPECT_EQ(r.fleet.tracesStarted, bed.load().started());
        EXPECT_EQ(r.fleet.tracesCompleted,
                  bed.load().completed() + bed.load().failed());
        // Lossless stitching through the NAT rewrite: no successful
        // request is missing its balancer hop or its server span, and
        // no trace id was seen born twice.
        EXPECT_EQ(r.fleet.traceOrphans, 0u);
        EXPECT_EQ(r.fleet.traceDuplicates, 0u);
        EXPECT_EQ(unstitchedOk(log), 0u);
        EXPECT_GT(r.fleet.tracesStitched, 0u);
        // The span a trace stitched came from a real TCB whose id the
        // balancer could only have learned from the client's packet.
        for (const FleetTrace *tr : log.sortedCompleted()) {
            if (tr->ok) {
                EXPECT_GE(tr->lbFlows, 1u);
            }
        }
        EXPECT_EQ(r.fleet.spanReconcileViolations, 0u);
        EXPECT_EQ(r.invariants.violationCount, 0u)
            << r.invariants.summary();
    }
}

TEST(FleetTrace, VipFailoverMidFlowKeepsTracesLossless)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetConfig fc = tracedFleet(k);
        std::string err;
        ASSERT_TRUE(parseFaultPlan("lb_crash@0.015-0.03:target=0",
                                   fc.base.faults, err))
            << err;
        FleetTestbed bed(fc);
        bed.run();
        ExperimentResult r = settle(bed);

        // The fault actually exercised the takeover path.
        EXPECT_GE(r.fleet.lbCrashes, 1u);
        EXPECT_GE(r.fleet.vipTakeovers, 1u);
        // Flows re-NATted by the surviving balancer keep the client's
        // trace id: nothing orphans, nothing double-starts, and every
        // served request still joined a server span.
        EXPECT_EQ(r.fleet.traceOrphans, 0u);
        EXPECT_EQ(r.fleet.traceDuplicates, 0u);
        EXPECT_EQ(unstitchedOk(bed.traceLog()), 0u);
        EXPECT_EQ(r.fleet.tracesStarted, bed.load().started());
        EXPECT_EQ(r.invariants.violationCount, 0u)
            << r.invariants.summary();
    }
}

TEST(FleetTrace, RollingRestartDrainKeepsTracesStitched)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetTestbed bed(tracedFleet(k));
        EventQueue &eq = bed.eventQueue();
        bed.startLoad();
        bed.runUntilChecked(ticksFromMsec(5));
        bed.beginRollingRestart(/*drainDeadline=*/ticksFromMsec(10),
                                /*downtime=*/ticksFromMsec(2));
        bed.runUntilChecked(eq.now() + ticksFromMsec(60));
        EXPECT_FALSE(bed.rollingRestartActive());
        ExperimentResult r = settle(bed);

        EXPECT_EQ(bed.restarts(),
                  static_cast<std::uint64_t>(bed.machineCount()));
        // Spans served by pre-restart generations still stitch: the
        // zombie generation's trace log outlives its machine.
        EXPECT_EQ(r.fleet.traceOrphans, 0u);
        EXPECT_EQ(r.fleet.traceDuplicates, 0u);
        EXPECT_EQ(unstitchedOk(bed.traceLog()), 0u);
        EXPECT_EQ(r.fleet.tracesStarted, bed.load().started());
        EXPECT_EQ(r.fleet.spanReconcileViolations, 0u);
        EXPECT_EQ(r.invariants.violationCount, 0u)
            << r.invariants.summary();
    }
}

TEST(FleetTrace, TracingNeverPerturbsTheFingerprintBothKernels)
{
    for (const KernelConfig &k : kBothKernels) {
        FleetConfig on = tracedFleet(k);
        FleetConfig off = tracedFleet(k);
        off.base.machine.traceEnabled = false;

        FleetTestbed bedOn(on);
        FleetTestbed bedOff(off);
        ExperimentResult rOn = bedOn.run();
        ExperimentResult rOff = bedOff.run();
        // Trace context rides the packets either way; recording it is
        // observation only. Same seed, same behavior, bit-identical.
        EXPECT_EQ(rOn.fingerprint, rOff.fingerprint);
        EXPECT_EQ(bedOn.currentFingerprint(), bedOff.currentFingerprint());

        // And tracing itself is deterministic: a second traced run
        // reproduces the stitching counters exactly.
        FleetTestbed bedOn2(on);
        ExperimentResult rOn2 = bedOn2.run();
        EXPECT_EQ(rOn.fingerprint, rOn2.fingerprint);
        EXPECT_EQ(rOn.fleet.tracesStarted, rOn2.fleet.tracesStarted);
        EXPECT_EQ(rOn.fleet.tracesStitched, rOn2.fleet.tracesStitched);
        EXPECT_EQ(rOn.fleet.tracesCompleted,
                  rOn2.fleet.tracesCompleted);
    }
}

} // namespace
} // namespace fsim
