/**
 * @file
 * HealthScorer unit tests: the latency-aware outlier machinery in
 * isolation from the balancer (evidence in, verdicts out).
 */

#include <gtest/gtest.h>

#include "fleet/health.hh"

using namespace fsim;

namespace
{

constexpr Tick kTimeout = 1000;

HealthScoreConfig
fastCfg()
{
    HealthScoreConfig cfg;
    cfg.outlierRounds = 3;
    cfg.clearRounds = 2;
    cfg.rampRounds = 4;
    return cfg;
}

/** One probe round: every target answers with its RTT from @p rtts. */
void
probeRound(HealthScorer &hs, const std::vector<Tick> &rtts)
{
    for (int m = 0; m < static_cast<int>(rtts.size()); ++m)
        hs.noteProbeRtt(m, rtts[m]);
}

std::vector<bool>
mask(int n, std::initializer_list<int> downs = {})
{
    std::vector<bool> v(n, true);
    for (int d : downs)
        v[d] = false;
    return v;
}

std::vector<bool>
only(int n, std::initializer_list<int> ups)
{
    std::vector<bool> v(n, false);
    for (int u : ups)
        v[u] = true;
    return v;
}

} // anonymous namespace

TEST(HealthScorer, UniformFleetHasNoOutliers)
{
    HealthScorer hs(fastCfg(), 4, kTimeout);
    std::vector<HealthScorer::Verdict> out;
    for (int round = 0; round < 10; ++round) {
        probeRound(hs, {100, 110, 105, 95});
        hs.evaluateRound(mask(4), only(4, {}), out);
        for (int m = 0; m < 4; ++m) {
            EXPECT_FALSE(out[m].outlier) << "round " << round;
            EXPECT_FALSE(out[m].ejectable);
        }
    }
}

TEST(HealthScorer, GraySlowTargetBecomesEjectableAfterHysteresis)
{
    HealthScoreConfig cfg = fastCfg();
    HealthScorer hs(cfg, 4, kTimeout);
    std::vector<HealthScorer::Verdict> out;
    int firstEjectable = -1;
    for (int round = 0; round < 12; ++round) {
        // Target 2 answers *within* the probe timeout — a binary
        // detector sees nothing — but 6x slower than its peers.
        probeRound(hs, {100, 110, 600, 95});
        hs.setRoundTick(1000 * (round + 1));
        hs.evaluateRound(mask(4), only(4, {}), out);
        if (out[2].ejectable && firstEjectable < 0)
            firstEjectable = round;
        EXPECT_FALSE(out[0].ejectable);
        EXPECT_FALSE(out[1].ejectable);
        EXPECT_FALSE(out[3].ejectable);
    }
    ASSERT_GE(firstEjectable, 0) << "gray target never became ejectable";
    // Hysteresis: not before outlierRounds consecutive outlier rounds.
    EXPECT_GE(firstEjectable, cfg.outlierRounds - 1);
    // Detection tick is the streak's FIRST outlier round.
    EXPECT_GT(hs.detectTick(2), 0u);
    EXPECT_LE(hs.detectTick(2),
              static_cast<Tick>(1000) * (firstEjectable + 2 -
                                         cfg.outlierRounds + 1));
}

TEST(HealthScorer, FleetWideSlowdownEjectsNobody)
{
    HealthScorer hs(fastCfg(), 4, kTimeout);
    std::vector<HealthScorer::Verdict> out;
    for (int round = 0; round < 10; ++round) {
        // Everyone degrades together (e.g. a shared-switch brownout):
        // peer-relative scoring must not evict half the fleet.
        probeRound(hs, {900, 920, 880, 910});
        hs.evaluateRound(mask(4), only(4, {}), out);
        for (int m = 0; m < 4; ++m)
            EXPECT_FALSE(out[m].ejectable) << "m=" << m;
    }
}

TEST(HealthScorer, TimeoutsRaiseScoreFasterThanSlowAnswers)
{
    HealthScorer hs(fastCfg(), 2, kTimeout);
    std::vector<HealthScorer::Verdict> out;
    hs.noteProbeRtt(0, 100);
    hs.noteProbeTimeout(1);
    hs.evaluateRound(mask(2), only(2, {}), out);
    // Timeout counts as timeoutPenalty * kTimeout of RTT plus a failed
    // mini-request; it must dominate a fast answer's score.
    EXPECT_GT(hs.score(1), hs.score(0) + 1.0);
}

TEST(HealthScorer, RequestFailuresAloneMakeAnOutlier)
{
    HealthScorer hs(fastCfg(), 4, kTimeout);
    std::vector<HealthScorer::Verdict> out;
    bool sawEjectable = false;
    for (int round = 0; round < 10; ++round) {
        probeRound(hs, {100, 105, 102, 99});    // probes all healthy
        for (int m = 0; m < 4; ++m) {
            for (int i = 0; i < 20; ++i)
                hs.noteRequestSent(m);
            // Target 3 drops half its data replies (lossy NIC).
            const int acked = m == 3 ? 10 : 20;
            for (int i = 0; i < acked; ++i)
                hs.noteRequestAcked(m);
        }
        hs.evaluateRound(mask(4), only(4, {}), out);
        sawEjectable = sawEjectable || out[3].ejectable;
        EXPECT_FALSE(out[0].ejectable);
    }
    EXPECT_TRUE(sawEjectable)
        << "success-ratio evidence alone should eject a lossy target";
}

TEST(HealthScorer, ReadmissionNeedsCleanStreakAndInBandScore)
{
    HealthScoreConfig cfg = fastCfg();
    HealthScorer hs(cfg, 4, kTimeout);
    std::vector<HealthScorer::Verdict> out;
    // Make target 1 sick, then eject it.
    for (int round = 0; round < 5; ++round) {
        probeRound(hs, {100, 0, 105, 98});
        hs.noteProbeTimeout(1);
        hs.evaluateRound(mask(4), only(4, {}), out);
    }
    hs.noteEjected(1);

    // Still gray while down: answers probes but slowly -> never clear.
    for (int round = 0; round < 6; ++round) {
        probeRound(hs, {100, 800, 105, 98});
        hs.evaluateRound(mask(4, {1}), only(4, {1}), out);
        EXPECT_FALSE(out[1].readmittable) << "round " << round;
    }

    // Healed: clean fast probes -> readmittable after clearRounds.
    int clearRoundsSeen = 0;
    bool readmittable = false;
    for (int round = 0; round < 20 && !readmittable; ++round) {
        probeRound(hs, {100, 102, 105, 98});
        hs.evaluateRound(mask(4, {1}), only(4, {1}), out);
        ++clearRoundsSeen;
        readmittable = out[1].readmittable;
    }
    EXPECT_TRUE(readmittable);
    EXPECT_GE(clearRoundsSeen, cfg.clearRounds);
}

TEST(HealthScorer, SlowStartRampGrowsLinearlyAfterReadmission)
{
    HealthScoreConfig cfg = fastCfg();    // rampRounds = 4
    HealthScorer hs(cfg, 2, kTimeout);
    std::vector<HealthScorer::Verdict> out;
    EXPECT_DOUBLE_EQ(hs.steerShare(0), 1.0);    // boot = full share

    hs.noteReadmitted(0);
    EXPECT_DOUBLE_EQ(hs.steerShare(0), 0.25);   // rampRound 0 -> 1/4
    double prev = hs.steerShare(0);
    for (int round = 0; round < 6; ++round) {
        probeRound(hs, {100, 100});
        hs.evaluateRound(mask(2), only(2, {}), out);
        EXPECT_GE(hs.steerShare(0), prev);
        prev = hs.steerShare(0);
    }
    EXPECT_DOUBLE_EQ(prev, 1.0);    // ramp completed
    EXPECT_DOUBLE_EQ(hs.steerShare(1), 1.0);    // peer never ramped
}

TEST(HealthScorer, ProbeTimeoutWhileCandidateResetsClearStreak)
{
    HealthScoreConfig cfg = fastCfg();    // clearRounds = 2
    HealthScorer hs(cfg, 2, kTimeout);
    std::vector<HealthScorer::Verdict> out;
    hs.noteEjected(1);
    // One clean round, then a timed-out probe: the streak must reset
    // to zero and the timeout's EWMA penalty must push readmission out
    // past a from-scratch clean streak.
    probeRound(hs, {100, 100});
    hs.evaluateRound(mask(2, {1}), only(2, {1}), out);
    EXPECT_FALSE(out[1].readmittable);
    EXPECT_EQ(hs.clearStreak(1), 1);
    hs.noteProbeRtt(0, 100);
    hs.noteProbeTimeout(1);
    hs.evaluateRound(mask(2, {1}), only(2, {1}), out);
    EXPECT_FALSE(out[1].readmittable);
    EXPECT_EQ(hs.clearStreak(1), 0);
    int roundsToClear = 0;
    bool readmittable = false;
    for (int round = 0; round < 30 && !readmittable; ++round) {
        probeRound(hs, {100, 100});
        hs.evaluateRound(mask(2, {1}), only(2, {1}), out);
        ++roundsToClear;
        readmittable = out[1].readmittable;
    }
    EXPECT_TRUE(readmittable);
    // The in-band requirement makes the bad probe cost MORE than just
    // restarting the streak: the score EWMA has to decay back first.
    EXPECT_GT(roundsToClear, cfg.clearRounds);
}

TEST(HealthScorer, SteadyGrayTargetDoesNotOscillate)
{
    // Schmitt-trigger regression: a machine pinned just above the
    // ejection band must not readmit while still gray. Once ejected it
    // stops carrying data traffic, so its probe-only evidence looks
    // cleaner than the loaded peers' — before the tightened clear band
    // it flapped eject/readmit every few rounds.
    HealthScoreConfig cfg = fastCfg();
    HealthScorer hs(cfg, 4, kTimeout);
    std::vector<HealthScorer::Verdict> out;
    // Healthy peers carry real traffic with a few losses; target 2 is
    // gray (RTT just past the band) and gets ejected.
    auto loadedRound = [&](bool twoEjected) {
        probeRound(hs, {100, 110, 500, 95});
        for (int m = 0; m < 4; ++m) {
            if (m == 2 && twoEjected)
                continue;   // no data steered to an ejected target
            for (int i = 0; i < 20; ++i)
                hs.noteRequestSent(m);
            for (int i = 0; i < 19; ++i)    // ~5% background failures
                hs.noteRequestAcked(m);
        }
    };
    bool ejected = false;
    for (int round = 0; round < 10 && !ejected; ++round) {
        loadedRound(false);
        hs.evaluateRound(mask(4), only(4, {}), out);
        ejected = out[2].ejectable;
    }
    ASSERT_TRUE(ejected);
    hs.noteEjected(2);
    // Still gray: across many probe-only rounds it must never clear.
    for (int round = 0; round < 30; ++round) {
        loadedRound(true);
        hs.evaluateRound(mask(4, {2}), only(4, {2}), out);
        EXPECT_FALSE(out[2].readmittable) << "round " << round;
    }
    // Healed: fast probes bring it back through the tighter band.
    bool readmittable = false;
    for (int round = 0; round < 30 && !readmittable; ++round) {
        probeRound(hs, {100, 110, 105, 95});
        hs.evaluateRound(mask(4, {2}), only(4, {2}), out);
        readmittable = out[2].readmittable;
    }
    EXPECT_TRUE(readmittable);
}

TEST(HealthScorer, DeterministicStateHash)
{
    auto run = [] {
        HealthScorer hs(fastCfg(), 3, kTimeout);
        std::vector<HealthScorer::Verdict> out;
        for (int round = 0; round < 5; ++round) {
            probeRound(hs, {100, 500, 120});
            hs.noteRequestSent(0);
            hs.noteRequestAcked(0);
            hs.evaluateRound(mask(3), only(3, {}), out);
        }
        return hs.stateHash();
    };
    const std::uint64_t a = run();
    const std::uint64_t b = run();
    EXPECT_EQ(a, b);
    EXPECT_NE(a, 0u);
}
