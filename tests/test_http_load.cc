/**
 * @file
 * Unit tests for the http_load-style client fleet, against a scripted
 * fake server endpoint (no kernel involved).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "app/http_load.hh"

namespace fsim
{
namespace
{

/** A minimal short-lived-HTTP server endpoint on the wire. */
struct FakeServer
{
    EventQueue &eq;
    Wire &wire;
    std::uint64_t requests = 0;
    std::uint64_t syns = 0;
    bool sendRst = false;
    std::set<std::uint32_t> seenSports;

    FakeServer(EventQueue &e, Wire &w, IpAddr addr)
        : eq(e), wire(w)
    {
        wire.attach(addr, [this](const Packet &p) { onPacket(p); });
    }

    void
    reply(const Packet &in, std::uint8_t flags, std::uint32_t payload = 0)
    {
        Packet out;
        out.tuple = in.tuple.reversed();
        out.flags = flags;
        out.payload = payload;
        wire.transmit(out, eq.now());
    }

    void
    onPacket(const Packet &p)
    {
        if (p.has(kSyn)) {
            ++syns;
            seenSports.insert((static_cast<std::uint32_t>(p.tuple.saddr)
                               << 16) ^ p.tuple.sport);
            reply(p, sendRst ? kRst : (kSyn | kAck));
            return;
        }
        if (p.payload > 0) {
            ++requests;
            // Serve then close: response followed by FIN.
            reply(p, kAck | kPsh, 64);
            reply(p, kFin | kAck);
            return;
        }
        if (p.has(kFin))
            reply(p, kAck);
    }
};

struct LoadFixture : public ::testing::Test
{
    EventQueue eq;
    Wire wire{eq, ticksFromUsec(10)};
    FakeServer server{eq, wire, 500};

    HttpLoad::Config
    config(int concurrency)
    {
        HttpLoad::Config c;
        c.serverAddrs = {500};
        c.concurrency = concurrency;
        return c;
    }
};

TEST_F(LoadFixture, CompletesFullExchange)
{
    HttpLoad load(eq, wire, config(1));
    load.start();
    eq.runUntil(ticksFromMsec(5));
    EXPECT_GT(load.completed(), 0u);
    EXPECT_EQ(load.failed(), 0u);
    EXPECT_GT(server.requests, 0u);
}

TEST_F(LoadFixture, ClosedLoopMaintainsConcurrency)
{
    HttpLoad load(eq, wire, config(10));
    load.start();
    eq.runUntil(ticksFromMsec(3));
    // Each completion relaunches: started = completed + in flight.
    EXPECT_EQ(load.started(), load.completed() + load.inFlight());
    EXPECT_EQ(load.inFlight(), 10u);
    EXPECT_GT(load.completed(), 20u);
}

TEST_F(LoadFixture, RstCountsAsFailureAndRelaunches)
{
    server.sendRst = true;
    HttpLoad load(eq, wire, config(2));
    load.start();
    eq.runUntil(ticksFromMsec(2));
    EXPECT_GT(load.failed(), 0u);
    EXPECT_EQ(load.completed(), 0u);
    EXPECT_EQ(load.inFlight(), 2u) << "failures relaunch in closed loop";
}

TEST_F(LoadFixture, DistinctTuplesPerConnection)
{
    HttpLoad load(eq, wire, config(16));
    load.start();
    eq.runUntil(ticksFromMsec(3));
    EXPECT_EQ(server.seenSports.size(), server.syns)
        << "no (ip,port) reuse while connections are in flight";
}

TEST_F(LoadFixture, OpenLoopRateIsRoughlyHonored)
{
    HttpLoad load(eq, wire, config(1));
    load.startOpenLoop(50000.0);
    eq.runUntil(ticksFromMsec(40));
    load.stopOpenLoop();
    double secs = 0.040;
    EXPECT_NEAR(static_cast<double>(load.started()), 50000.0 * secs,
                50000.0 * secs * 0.25);
}

TEST_F(LoadFixture, StopOpenLoopHaltsNewStarts)
{
    HttpLoad load(eq, wire, config(1));
    load.startOpenLoop(50000.0);
    eq.runUntil(ticksFromMsec(5));
    load.stopOpenLoop();
    std::uint64_t at_stop = load.started();
    eq.runUntil(ticksFromMsec(20));
    EXPECT_LE(load.started(), at_stop + 1);
}

TEST_F(LoadFixture, ThroughputWindowing)
{
    HttpLoad load(eq, wire, config(8));
    load.start();
    eq.runUntil(ticksFromMsec(2));
    load.markWindow();
    std::uint64_t before = load.completed();
    eq.runUntil(ticksFromMsec(6));
    double cps = load.throughputSinceMark();
    double expect = static_cast<double>(load.completed() - before) / 0.004;
    EXPECT_NEAR(cps, expect, expect * 0.01 + 1);
}

struct KeepAliveServer : FakeServer
{
    using FakeServer::FakeServer;

    void
    onPacket(const Packet &p)
    {
        // Keep-alive: respond without FIN; close only after client FIN.
        if (p.has(kSyn)) {
            ++syns;
            reply(p, kSyn | kAck);
        } else if (p.payload > 0) {
            ++requests;
            reply(p, kAck | kPsh, 64);
        } else if (p.has(kFin)) {
            reply(p, kFin | kAck);   // our FIN rides with the ACK
        }
    }
};

TEST(HttpLoadKeepAlive, IssuesAllRequestsThenCloses)
{
    EventQueue eq;
    Wire wire(eq, ticksFromUsec(10));
    KeepAliveServer server(eq, wire, 500);
    wire.attach(500, [&server](const Packet &p) { server.onPacket(p); });

    HttpLoad::Config c;
    c.serverAddrs = {500};
    c.concurrency = 1;
    c.requestsPerConn = 5;
    HttpLoad load(eq, wire, c);
    load.start();
    eq.runUntil(ticksFromMsec(4));
    ASSERT_GT(load.completed(), 2u);
    // Each completed connection carried exactly 5 requests.
    EXPECT_GE(load.responses(), load.completed() * 5);
    EXPECT_NEAR(static_cast<double>(server.requests),
                static_cast<double>(load.completed()) * 5.0, 6.0);
}

} // anonymous namespace
} // namespace fsim
