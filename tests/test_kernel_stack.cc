/**
 * @file
 * Integration tests for the simulated kernel stack driven by hand-crafted
 * packets: handshakes, data, teardown, robustness slow path, RFD ports,
 * reuseport clones, backlog overflow.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/machine.hh"

namespace fsim
{
namespace
{

constexpr IpAddr kClientIp = 0xac100001;
constexpr IpAddr kBackendIp = 0x0a010001;

struct KernelFixture : public ::testing::Test
{
    EventQueue eq;
    Wire wire{eq, ticksFromUsec(10)};
    std::unique_ptr<Machine> m;
    std::vector<Packet> clientRx;
    std::vector<Packet> backendRx;
    std::vector<int> readyProcs;

    void
    build(const KernelConfig &kc, int cores = 2)
    {
        MachineConfig mc;
        mc.cores = cores;
        mc.kernel = kc;
        mc.listenIps = 1;
        m = std::make_unique<Machine>(eq, wire, mc);
        wire.attachRange(kClientIp, kClientIp + 0xffff,
                         [this](const Packet &p) {
                             clientRx.push_back(p);
                         });
        wire.attachRange(kBackendIp, kBackendIp + 0xff,
                         [this](const Packet &p) {
                             backendRx.push_back(p);
                         });
        m->kernel().onProcessReady = [this](int p, bool) {
            readyProcs.push_back(p);
        };
    }

    IpAddr srv() const { return m->addrs()[0]; }

    void
    send(const FiveTuple &t, std::uint8_t flags, std::uint32_t payload = 0)
    {
        Packet p;
        p.tuple = t;
        p.flags = flags;
        p.payload = payload;
        wire.transmit(p, eq.now());
    }

    /** Client tuple whose RSS queue is @p queue. */
    FiveTuple
    tupleForQueue(int queue)
    {
        for (Port sp = 10000; sp < 60000; ++sp) {
            FiveTuple t{kClientIp, srv(), sp, 80};
            if (m->nic().rssQueue(t) == queue)
                return t;
        }
        ADD_FAILURE() << "no tuple found for queue " << queue;
        return FiveTuple{};
    }

    /** Run the three-way handshake for @p t (client side). */
    void
    handshake(const FiveTuple &t)
    {
        send(t, kSyn);
        eq.runAll();
        send(t, kAck);
        eq.runAll();
    }

    bool
    clientSaw(std::uint8_t flag)
    {
        for (const Packet &p : clientRx)
            if (p.has(static_cast<TcpFlag>(flag)))
                return true;
        return false;
    }
};

TEST_F(KernelFixture, PassiveHandshakeAndAccept)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);

    FiveTuple t = tupleForQueue(0);
    send(t, kSyn);
    eq.runAll();
    ASSERT_FALSE(clientRx.empty());
    EXPECT_TRUE(clientRx.back().has(kSyn));
    EXPECT_TRUE(clientRx.back().has(kAck));

    send(t, kAck);
    eq.runAll();
    EXPECT_FALSE(readyProcs.empty()) << "listener wake expected";

    auto r = k.accept(proc, eq.now(), lfd);
    ASSERT_NE(r.sock, nullptr);
    EXPECT_GE(r.fd, 3);
    EXPECT_EQ(r.sock->state, TcpState::kEstablished);
    EXPECT_EQ(r.sock->ownerProcess, proc);
    EXPECT_TRUE(r.sock->passive);
    EXPECT_EQ(k.stats().acceptedConns, 1u);
}

TEST_F(KernelFixture, AcceptOnEmptyQueueReturnsNull)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);
    auto r = k.accept(proc, 0, lfd);
    EXPECT_EQ(r.sock, nullptr);
    EXPECT_EQ(r.fd, -1);
}

TEST_F(KernelFixture, SynToUnboundPortGetsRst)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    k.listen(proc, srv(), 80);
    send(FiveTuple{kClientIp, srv(), 40000, 81}, kSyn);
    eq.runAll();
    EXPECT_TRUE(clientSaw(kRst));
    EXPECT_EQ(k.stats().rstSent, 1u);
}

TEST_F(KernelFixture, EarlyDataIsBufferedUntilRead)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);
    FiveTuple t = tupleForQueue(0);
    handshake(t);
    send(t, kAck | kPsh, 600);   // request races ahead of accept()
    eq.runAll();

    auto r = k.accept(proc, eq.now(), lfd);
    ASSERT_NE(r.sock, nullptr);
    EXPECT_EQ(r.sock->rxPending, 600u);
    auto rd = k.read(proc, r.t, r.fd);
    EXPECT_EQ(rd.bytes, 600u);
    EXPECT_FALSE(rd.finSeen);
    auto rd2 = k.read(proc, rd.t, r.fd);
    EXPECT_EQ(rd2.bytes, 0u);
}

TEST_F(KernelFixture, PassiveCloseLifecycle)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);
    FiveTuple t = tupleForQueue(0);
    handshake(t);
    auto r = k.accept(proc, eq.now(), lfd);
    ASSERT_NE(r.sock, nullptr);
    std::size_t baseline = k.liveSockets();

    send(t, kFin | kAck);   // client closes first
    eq.runAll();
    EXPECT_EQ(r.sock->state, TcpState::kCloseWait);
    auto rd = k.read(proc, eq.now(), r.fd);
    EXPECT_TRUE(rd.finSeen);

    k.close(proc, eq.now(), r.fd);
    EXPECT_EQ(r.sock->state, TcpState::kLastAck);
    eq.runAll();
    EXPECT_TRUE(clientSaw(kFin));

    send(t, kAck);          // final ACK
    eq.runAll();
    EXPECT_EQ(k.liveSockets(), baseline - 1);
    EXPECT_EQ(k.stats().socketsDestroyed, 1u);
}

TEST_F(KernelFixture, ActiveCloseEntersTimeWaitAndReaps)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);
    FiveTuple t = tupleForQueue(0);
    handshake(t);
    auto r = k.accept(proc, eq.now(), lfd);
    ASSERT_NE(r.sock, nullptr);

    k.write(proc, eq.now(), r.fd, 64);
    k.close(proc, eq.now(), r.fd);   // server closes first
    EXPECT_EQ(r.sock->state, TcpState::kFinWait1);
    eq.runAll();

    send(t, kAck | kFin);   // client ACKs our FIN and sends its own
    // Run only a couple of jiffies: running to quiescence would already
    // fire the 2*MSL reaper and free the socket.
    eq.runUntil(eq.now() + ticksFromMsec(2));
    EXPECT_EQ(r.sock->state, TcpState::kTimeWait);

    // The 2*MSL reaper fires within timeWaitJiffies.
    eq.runAll();
    EXPECT_EQ(k.stats().timeWaitReaped, 1u);
}

TEST_F(KernelFixture, BacklogOverflowRejectsWithRst)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);
    Socket *lsock = k.sockFromFd(proc, lfd);
    lsock->backlog = 2;

    for (Port sp = 20000; sp < 20005; ++sp) {
        FiveTuple t{kClientIp, srv(), sp, 80};
        handshake(t);
    }
    EXPECT_EQ(k.stats().acceptOverflows, 3u);
    EXPECT_TRUE(clientSaw(kRst));
    EXPECT_EQ(lsock->acceptQueue.size(), 2u);
}

TEST_F(KernelFixture, ActiveConnectHandshake)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(1);
    k.listen(proc, srv(), 80);   // provides the outbound address

    auto c = k.connect(proc, eq.now(), kBackendIp, 80);
    ASSERT_NE(c.sock, nullptr);
    EXPECT_FALSE(c.sock->passive);
    EXPECT_EQ(c.sock->state, TcpState::kSynSent);
    k.epollAdd(proc, c.t, c.fd);
    eq.runAll();
    ASSERT_FALSE(backendRx.empty());
    EXPECT_TRUE(backendRx.back().has(kSyn));

    // Backend answers SYN-ACK.
    Packet synack;
    synack.tuple = backendRx.back().tuple.reversed();
    synack.flags = kSyn | kAck;
    wire.transmit(synack, eq.now());
    eq.runAll();
    EXPECT_EQ(c.sock->state, TcpState::kEstablished);
    EXPECT_FALSE(readyProcs.empty()) << "connect completion wake";
    EXPECT_EQ(k.stats().activeConns, 1u);
}

TEST_F(KernelFixture, RfdEncodesCoreInSourcePort)
{
    build(KernelConfig::fastsocket(), 4);
    KernelStack &k = m->kernel();
    Port mask = ReceiveFlowDeliver::hashMask(4);
    for (CoreId core = 0; core < 4; ++core) {
        int proc = k.addProcess(core);
        k.listen(proc, srv(), 80);
        if (k.config().localListen)
            k.localListen(proc, srv(), 80);
        auto c = k.connect(proc, eq.now(), kBackendIp, 80);
        ASSERT_NE(c.sock, nullptr);
        Port psrc = c.sock->rxTuple.dport;
        EXPECT_EQ(psrc & mask, core)
            << "RFD: hash(psrc) must be the initiating core";
        EXPECT_GT(psrc, kWellKnownPortMax);
    }
}

TEST_F(KernelFixture, SlowPathSurvivesProcessCrash)
{
    // Paper 3.2.1: kill the process whose core receives a SYN; the
    // connection must still be served via the global listen socket
    // instead of being reset.
    build(KernelConfig::fastsocket(), 2);
    KernelStack &k = m->kernel();
    int p0 = k.addProcess(0);
    int p1 = k.addProcess(1);
    int lfd0 = k.listen(p0, srv(), 80);
    (void)lfd0;
    int lfd1 = k.listen(p1, srv(), 80);
    k.localListen(p0, srv(), 80);
    k.localListen(p1, srv(), 80);

    k.killProcess(p0);

    FiveTuple t = tupleForQueue(0);   // lands on the dead process's core
    send(t, kSyn);
    eq.runAll();
    EXPECT_FALSE(clientSaw(kRst)) << "robustness: no reset";
    ASSERT_TRUE(clientSaw(kSyn));

    send(t, kAck);
    eq.runAll();

    // The surviving process accepts it -- global queue is checked first.
    auto r = k.accept(p1, eq.now(), lfd1);
    ASSERT_NE(r.sock, nullptr);
    EXPECT_EQ(k.stats().slowPathAccepts, 1u);
    EXPECT_EQ(r.sock->state, TcpState::kEstablished);
}

TEST_F(KernelFixture, FastPathUsesLocalTableWhenHealthy)
{
    build(KernelConfig::fastsocket(), 2);
    KernelStack &k = m->kernel();
    int p0 = k.addProcess(0);
    int p1 = k.addProcess(1);
    int lfd0 = k.listen(p0, srv(), 80);
    k.listen(p1, srv(), 80);
    k.localListen(p0, srv(), 80);
    k.localListen(p1, srv(), 80);

    FiveTuple t = tupleForQueue(0);
    handshake(t);
    auto r = k.accept(p0, eq.now(), lfd0);
    ASSERT_NE(r.sock, nullptr);
    EXPECT_EQ(k.stats().slowPathAccepts, 0u);
    // Passive locality: everything happened on core 0.
    EXPECT_EQ(r.sock->touchedCount(), 1);
    EXPECT_EQ(r.sock->ownerCore, 0);
}

TEST_F(KernelFixture, ReuseportCreatesPerProcessClones)
{
    build(KernelConfig::linux313(), 2);
    KernelStack &k = m->kernel();
    int p0 = k.addProcess(0);
    int p1 = k.addProcess(1);
    k.listen(p0, srv(), 80);
    k.listen(p1, srv(), 80);

    FiveTuple t = tupleForQueue(0);
    handshake(t);
    // The connection sits in exactly one clone's queue.
    Socket *l0 = k.sockFromFd(p0, 3);
    Socket *l1 = k.sockFromFd(p1, 3);
    EXPECT_EQ(l0->acceptQueue.size() + l1->acceptQueue.size(), 1u);
    EXPECT_NE(l0, l1);
}

TEST_F(KernelFixture, FdsAreReusedAfterClose)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);
    FiveTuple t1 = tupleForQueue(0);
    handshake(t1);
    auto r1 = k.accept(proc, eq.now(), lfd);
    ASSERT_NE(r1.sock, nullptr);
    int fd1 = r1.fd;
    k.close(proc, eq.now(), fd1);

    FiveTuple t2{kClientIp, srv(), static_cast<Port>(t1.sport + 1), 80};
    handshake(t2);
    auto r2 = k.accept(proc, eq.now(), lfd);
    ASSERT_NE(r2.sock, nullptr);
    EXPECT_EQ(r2.fd, fd1) << "lowest-fd rule";
}

TEST_F(KernelFixture, NetstatListsListenersAndConnections)
{
    build(KernelConfig::fastsocket(), 2);
    KernelStack &k = m->kernel();
    int p0 = k.addProcess(0);
    k.listen(p0, srv(), 80);
    k.localListen(p0, srv(), 80);
    FiveTuple t = tupleForQueue(0);
    handshake(t);

    bool saw_listen = false;
    bool saw_estab = false;
    for (const std::string &row : k.netstat()) {
        if (row.find("LISTEN") != std::string::npos)
            saw_listen = true;
        if (row.find("ESTABLISHED") != std::string::npos)
            saw_estab = true;
    }
    EXPECT_TRUE(saw_listen);
    EXPECT_TRUE(saw_estab);
}

TEST_F(KernelFixture, DataWakesOwnerViaEpoll)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);
    FiveTuple t = tupleForQueue(0);
    handshake(t);
    auto r = k.accept(proc, eq.now(), lfd);
    ASSERT_NE(r.sock, nullptr);
    k.epollAdd(proc, r.t, r.fd);
    readyProcs.clear();

    send(t, kAck | kPsh, 600);
    eq.runAll();
    EXPECT_FALSE(readyProcs.empty());
    std::vector<int> fds;
    k.epollWait(proc, eq.now(), fds);
    EXPECT_NE(std::find(fds.begin(), fds.end(), r.fd), fds.end());
}

TEST_F(KernelFixture, DuplicateSynIsReansweredNotDuplicated)
{
    build(KernelConfig::base2632());
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);

    FiveTuple t = tupleForQueue(0);
    send(t, kSyn);
    eq.runAll();
    std::uint64_t created = k.stats().socketsCreated;
    clientRx.clear();

    // Client retransmits the SYN (e.g. the SYN-ACK was lost): the kernel
    // must re-answer from the existing embryonic TCB, not mint a second.
    send(t, kSyn);
    eq.runAll();
    EXPECT_EQ(k.stats().synRetransmits, 1u);
    EXPECT_EQ(k.stats().socketsCreated, created);
    ASSERT_FALSE(clientRx.empty());
    EXPECT_TRUE(clientRx.back().has(kSyn));
    EXPECT_TRUE(clientRx.back().has(kAck));

    // The handshake still completes into exactly one accepted conn.
    send(t, kAck);
    eq.runAll();
    auto r = k.accept(proc, eq.now(), lfd);
    ASSERT_NE(r.sock, nullptr);
    EXPECT_EQ(k.stats().acceptedConns, 1u);
}

TEST_F(KernelFixture, SynQueueFullWithoutCookiesDropsSilently)
{
    KernelConfig kc = KernelConfig::base2632();
    kc.synBacklog = 0;   // every SYN sees a "full" queue
    build(kc);
    KernelStack &k = m->kernel();
    k.listen(k.addProcess(0), srv(), 80);

    send(tupleForQueue(0), kSyn);
    eq.runAll();
    EXPECT_EQ(k.stats().synDropped, 1u);
    EXPECT_TRUE(clientRx.empty()) << "drop is silent: no SYN-ACK, no RST";
}

TEST_F(KernelFixture, SynCookieHandshakeEndToEnd)
{
    KernelConfig kc = KernelConfig::base2632();
    kc.synBacklog = 0;   // force the stateless path
    kc.synCookies = true;
    build(kc);
    KernelStack &k = m->kernel();
    int proc = k.addProcess(0);
    int lfd = k.listen(proc, srv(), 80);

    FiveTuple t = tupleForQueue(0);
    std::uint64_t created = k.stats().socketsCreated;
    send(t, kSyn);
    eq.runAll();
    EXPECT_EQ(k.stats().synCookiesSent, 1u);
    EXPECT_EQ(k.stats().socketsCreated, created) << "stateless SYN-ACK";
    ASSERT_FALSE(clientRx.empty());
    const Packet &synack = clientRx.back();
    ASSERT_TRUE(synack.has(kSyn));
    ASSERT_NE(synack.cookie, 0u);

    // ACK echoing the cookie mints the established TCB on the spot.
    Packet ack;
    ack.tuple = t;
    ack.flags = kAck;
    ack.cookie = synack.cookie;
    wire.transmit(ack, eq.now());
    eq.runAll();
    EXPECT_EQ(k.stats().synCookiesValidated, 1u);

    auto r = k.accept(proc, eq.now(), lfd);
    ASSERT_NE(r.sock, nullptr);
    EXPECT_EQ(r.sock->state, TcpState::kEstablished);
}

TEST_F(KernelFixture, BadCookieAckIsReset)
{
    KernelConfig kc = KernelConfig::base2632();
    kc.synBacklog = 0;
    kc.synCookies = true;
    build(kc);
    KernelStack &k = m->kernel();
    k.listen(k.addProcess(0), srv(), 80);

    Packet ack;
    ack.tuple = tupleForQueue(0);
    ack.flags = kAck;
    ack.cookie = 0xdeadbeef | 1u;   // forged: does not match the flow
    wire.transmit(ack, eq.now());
    eq.runAll();
    EXPECT_EQ(k.stats().synCookiesValidated, 0u);
    EXPECT_TRUE(clientSaw(kRst));
}

TEST_F(KernelFixture, EmbryonicTcbIsReapedAfterSynRcvdTimeout)
{
    KernelConfig kc = KernelConfig::base2632();
    kc.synRcvdJiffies = 300;
    build(kc);
    KernelStack &k = m->kernel();
    k.listen(k.addProcess(0), srv(), 80);

    FiveTuple t = tupleForQueue(0);
    send(t, kSyn);
    eq.runAll();   // drains past the embryonic timeout: TCB reaped
    EXPECT_EQ(k.stats().synRcvdReaped, 1u);

    // The late final ACK finds no connection and is refused.
    clientRx.clear();
    send(t, kAck);
    eq.runAll();
    EXPECT_TRUE(clientSaw(kRst));
    EXPECT_EQ(k.stats().acceptedConns, 0u);
}

} // anonymous namespace
} // namespace fsim
