/**
 * @file
 * Unit tests for the listen table, including the SO_REUSEPORT chain-walk
 * behavior the paper measures in section 2.1.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "sim/rng.hh"
#include "tcp/listen_table.hh"

namespace fsim
{
namespace
{

std::unique_ptr<Socket>
listener(IpAddr addr, Port port)
{
    auto s = std::make_unique<Socket>();
    s->kind = SockKind::kListen;
    s->state = TcpState::kListen;
    s->bindAddr = addr;
    s->bindPort = port;
    return s;
}

TEST(ListenTable, ExactMatch)
{
    ListenTable t;
    Rng rng(1);
    auto a = listener(10, 80);
    t.insert(a.get());
    auto l = t.lookup(10, 80, rng);
    EXPECT_EQ(l.sock, a.get());
    EXPECT_EQ(l.walked, 1);
    EXPECT_EQ(t.lookup(10, 81, rng).sock, nullptr);
    EXPECT_EQ(t.lookup(11, 80, rng).sock, nullptr);
}

TEST(ListenTable, WildcardFallback)
{
    ListenTable t;
    Rng rng(1);
    auto any = listener(0, 80);
    t.insert(any.get());
    EXPECT_EQ(t.lookup(123, 80, rng).sock, any.get());
}

TEST(ListenTable, ExactPreferredOverWildcard)
{
    ListenTable t;
    Rng rng(1);
    auto any = listener(0, 80);
    auto exact = listener(10, 80);
    t.insert(any.get());
    t.insert(exact.get());
    EXPECT_EQ(t.lookup(10, 80, rng).sock, exact.get());
    EXPECT_EQ(t.lookup(99, 80, rng).sock, any.get());
}

TEST(ListenTable, RemoveAndEmpty)
{
    ListenTable t;
    Rng rng(1);
    auto a = listener(10, 80);
    t.insert(a.get());
    EXPECT_TRUE(t.remove(a.get()));
    EXPECT_FALSE(t.remove(a.get()));
    EXPECT_EQ(t.lookup(10, 80, rng).sock, nullptr);
    EXPECT_EQ(t.size(), 0u);
}

TEST(ListenTable, ReuseportChainWalkIsOrderN)
{
    ListenTable t;
    Rng rng(1);
    std::vector<std::unique_ptr<Socket>> clones;
    for (int i = 0; i < 24; ++i) {
        clones.push_back(listener(10, 80));
        clones.back()->reuseportOwner = i;
        t.insert(clones.back().get());
    }
    auto l = t.lookup(10, 80, rng);
    // The whole 24-entry chain is scored (inet_lookup_listener O(n)).
    EXPECT_EQ(l.walked, 24);
    ASSERT_NE(l.chain, nullptr);
    EXPECT_EQ(l.chain->size(), 24u);
    EXPECT_EQ(t.chainLength(10, 80), 24u);
}

TEST(ListenTable, ReuseportPickIsRoughlyUniform)
{
    ListenTable t;
    Rng rng(99);
    std::vector<std::unique_ptr<Socket>> clones;
    for (int i = 0; i < 8; ++i) {
        clones.push_back(listener(10, 80));
        clones.back()->reuseportOwner = i;
        t.insert(clones.back().get());
    }
    std::map<int, int> picks;
    for (int i = 0; i < 8000; ++i)
        ++picks[t.lookup(10, 80, rng).sock->reuseportOwner];
    ASSERT_EQ(picks.size(), 8u);
    for (auto &kv : picks)
        EXPECT_NEAR(kv.second, 1000, 150);
}

TEST(ListenTable, RemoveShrinksChain)
{
    ListenTable t;
    Rng rng(1);
    auto a = listener(10, 80);
    auto b = listener(10, 80);
    t.insert(a.get());
    t.insert(b.get());
    EXPECT_TRUE(t.remove(a.get()));
    EXPECT_EQ(t.chainLength(10, 80), 1u);
    EXPECT_EQ(t.lookup(10, 80, rng).sock, b.get());
}

TEST(ListenTable, FindExactReturnsFirst)
{
    ListenTable t;
    auto a = listener(10, 80);
    t.insert(a.get());
    EXPECT_EQ(t.findExact(10, 80), a.get());
    EXPECT_EQ(t.findExact(10, 81), nullptr);
}

TEST(ListenTable, AllEnumerates)
{
    ListenTable t;
    auto a = listener(10, 80);
    auto b = listener(11, 80);
    auto c = listener(10, 443);
    t.insert(a.get());
    t.insert(b.get());
    t.insert(c.get());
    EXPECT_EQ(t.all().size(), 3u);
    EXPECT_EQ(t.size(), 3u);
}

TEST(ListenTable, DistinctPortsIndependent)
{
    ListenTable t;
    Rng rng(1);
    auto a = listener(10, 80);
    auto b = listener(10, 8080);
    t.insert(a.get());
    t.insert(b.get());
    EXPECT_EQ(t.lookup(10, 80, rng).sock, a.get());
    EXPECT_EQ(t.lookup(10, 8080, rng).sock, b.get());
}

} // anonymous namespace
} // namespace fsim
