/**
 * @file
 * Unit tests for packets, flow hashing and the NIC steering model
 * (RSS, FDir ATR, FDir Perfect-Filtering).
 */

#include <gtest/gtest.h>

#include <map>

#include "net/nic.hh"
#include "net/packet.hh"

namespace fsim
{
namespace
{

FiveTuple
tuple(IpAddr s, Port sp, IpAddr d, Port dp)
{
    return FiveTuple{s, d, sp, dp};
}

TEST(Packet, FlagsAndHelpers)
{
    Packet p;
    p.flags = kSyn | kAck;
    EXPECT_TRUE(p.has(kSyn));
    EXPECT_TRUE(p.has(kAck));
    EXPECT_FALSE(p.has(kFin));
}

TEST(Packet, ReversedSwapsEndpoints)
{
    FiveTuple t = tuple(1, 1000, 2, 80);
    FiveTuple r = t.reversed();
    EXPECT_EQ(r.saddr, 2u);
    EXPECT_EQ(r.daddr, 1u);
    EXPECT_EQ(r.sport, 80);
    EXPECT_EQ(r.dport, 1000);
    EXPECT_EQ(r.reversed(), t);
}

TEST(FlowHash, DeterministicAndSensitive)
{
    FiveTuple t = tuple(10, 1234, 20, 80);
    EXPECT_EQ(flowHash(t), flowHash(t));
    EXPECT_NE(flowHash(t), flowHash(tuple(10, 1235, 20, 80)));
    EXPECT_NE(flowHash(t), flowHash(tuple(11, 1234, 20, 80)));
}

TEST(Rss, SpreadsFlowsEvenly)
{
    NicConfig cfg;
    cfg.numQueues = 8;
    Nic nic(cfg);
    std::map<int, int> counts;
    for (int i = 0; i < 8000; ++i) {
        Packet p;
        p.tuple = tuple(0xac100000u + (i % 64), 1024 + i, 10, 80);
        ++counts[nic.classifyRx(p)];
    }
    ASSERT_EQ(counts.size(), 8u);
    for (auto &kv : counts)
        EXPECT_NEAR(kv.second, 1000, 320);
}

TEST(Rss, SameFlowSameQueue)
{
    NicConfig cfg;
    cfg.numQueues = 16;
    Nic nic(cfg);
    Packet p;
    p.tuple = tuple(1, 5555, 2, 80);
    int q = nic.classifyRx(p);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(nic.classifyRx(p), q);
}

TEST(FdirAtr, SampledTxInstallsReverseFlow)
{
    NicConfig cfg;
    cfg.numQueues = 8;
    cfg.fdirAtr = true;
    cfg.atrSampleRate = 1;   // sample every packet
    Nic nic(cfg);

    Packet out;
    out.tuple = tuple(10, 80, 20, 5555);   // server -> client reply
    nic.noteTx(out, 3);
    EXPECT_EQ(nic.atrInstalls(), 1u);

    Packet in;
    in.tuple = out.tuple.reversed();
    EXPECT_EQ(nic.classifyRx(in), 3);
    EXPECT_EQ(nic.atrHits(), 1u);
}

TEST(FdirAtr, SampleRateThins)
{
    NicConfig cfg;
    cfg.numQueues = 4;
    cfg.fdirAtr = true;
    cfg.atrSampleRate = 20;
    Nic nic(cfg);
    for (int i = 0; i < 100; ++i) {
        Packet out;
        out.tuple = tuple(10, 80, 20, static_cast<Port>(2000 + i));
        nic.noteTx(out, 1);
    }
    EXPECT_EQ(nic.atrInstalls(), 5u);
}

TEST(FdirAtr, TableCollisionEvicts)
{
    NicConfig cfg;
    cfg.numQueues = 4;
    cfg.fdirAtr = true;
    cfg.atrSampleRate = 1;
    cfg.atrTableSize = 2;   // force collisions
    Nic nic(cfg);
    for (int i = 0; i < 64; ++i) {
        Packet out;
        out.tuple = tuple(10, 80, 20 + i, static_cast<Port>(3000 + i));
        nic.noteTx(out, i % 4);
    }
    EXPECT_GT(nic.atrEvictions(), 0u);
}

TEST(FdirAtr, CapacityClampRehomesAndEvicts)
{
    NicConfig cfg;
    cfg.numQueues = 4;
    cfg.fdirAtr = true;
    cfg.atrSampleRate = 1;
    cfg.atrTableSize = 64;
    Nic nic(cfg);
    for (int i = 0; i < 40; ++i) {
        Packet out;
        out.tuple = tuple(10, 80, 20 + i, static_cast<Port>(3000 + i));
        nic.noteTx(out, i % 4);
    }
    EXPECT_EQ(nic.atrCapacity(), 64u);

    // Far more live entries than 4 slots: re-homing must evict.
    std::uint64_t before = nic.atrEvictions();
    nic.setAtrCapacityClamp(4);
    EXPECT_EQ(nic.atrCapacity(), 4u);
    EXPECT_GT(nic.atrEvictions(), before);

    // At most 4 of the 40 flows can still be steered; every miss must
    // classify exactly where plain RSS would.
    int hits = 0;
    for (int i = 0; i < 40; ++i) {
        Packet in;
        in.tuple = tuple(20 + i, static_cast<Port>(3000 + i), 10, 80);
        std::uint64_t h0 = nic.atrHits();
        int q = nic.classifyRx(in);
        if (nic.atrHits() > h0)
            ++hits;
        else
            EXPECT_EQ(q, nic.rssQueue(in.tuple));
    }
    EXPECT_LE(hits, 4);
}

TEST(FdirAtr, LiftingClampRestoresFullCapacity)
{
    NicConfig cfg;
    cfg.numQueues = 4;
    cfg.fdirAtr = true;
    cfg.atrSampleRate = 1;
    cfg.atrTableSize = 64;
    Nic nic(cfg);
    nic.setAtrCapacityClamp(4);
    EXPECT_EQ(nic.atrCapacity(), 4u);
    nic.setAtrCapacityClamp(0);
    EXPECT_EQ(nic.atrCapacity(), 64u);

    // Fresh installs steer again at full capacity.
    Packet out;
    out.tuple = tuple(10, 80, 99, 4321);
    nic.noteTx(out, 2);
    Packet in;
    in.tuple = out.tuple.reversed();
    EXPECT_EQ(nic.classifyRx(in), 2);
    EXPECT_GT(nic.atrHits(), 0u);
}

TEST(FdirAtr, ClampIsNoOpWithoutAtr)
{
    NicConfig cfg;
    cfg.numQueues = 4;
    Nic nic(cfg);
    nic.setAtrCapacityClamp(8);   // must not crash or steer anything
    Packet in;
    in.tuple = tuple(7, 4444, 9, 80);
    EXPECT_EQ(nic.classifyRx(in), nic.rssQueue(in.tuple));
}

TEST(FdirAtr, MissCountsRssFallback)
{
    NicConfig cfg;
    cfg.numQueues = 8;
    cfg.fdirAtr = true;
    Nic nic(cfg);
    Packet in;
    in.tuple = tuple(7, 4444, 9, 80);
    nic.classifyRx(in);
    EXPECT_EQ(nic.rssFallbacks(), 1u);
    EXPECT_EQ(nic.atrHits(), 0u);
}

TEST(FdirAtr, MissFallsBackToRss)
{
    NicConfig cfg;
    cfg.numQueues = 8;
    cfg.fdirAtr = true;
    Nic nic(cfg);
    Packet in;
    in.tuple = tuple(7, 4444, 9, 80);
    EXPECT_EQ(nic.classifyRx(in), nic.rssQueue(in.tuple));
    EXPECT_EQ(nic.atrHits(), 0u);
}

TEST(FdirPerfect, StersActiveIncomingByPortMask)
{
    NicConfig cfg;
    cfg.numQueues = 16;
    cfg.fdirPerfect = true;
    cfg.perfectPortMask = 15;
    Nic nic(cfg);
    // Reply from an origin server (well-known source port).
    Packet in;
    in.tuple = tuple(9, 80, 7, 16384 + 5);   // dport & 15 == 5
    EXPECT_EQ(nic.classifyRx(in), 5);
    EXPECT_EQ(nic.perfectHits(), 1u);
}

TEST(FdirPerfect, PassiveTrafficUnaffected)
{
    NicConfig cfg;
    cfg.numQueues = 16;
    cfg.fdirPerfect = true;
    cfg.perfectPortMask = 15;
    Nic nic(cfg);
    // Client SYN to our port 80: source port is ephemeral, so the
    // perfect rule must not fire (it would break passive locality).
    Packet in;
    in.tuple = tuple(9, 40000, 7, 80);
    EXPECT_EQ(nic.classifyRx(in), nic.rssQueue(in.tuple));
    EXPECT_EQ(nic.perfectHits(), 0u);
}

TEST(FdirPerfect, OutOfRangeQueueFallsBack)
{
    NicConfig cfg;
    cfg.numQueues = 12;           // mask 15 can address 16
    cfg.fdirPerfect = true;
    cfg.perfectPortMask = 15;
    Nic nic(cfg);
    Packet in;
    in.tuple = tuple(9, 80, 7, 16384 + 13);   // hash 13 >= 12 queues
    EXPECT_EQ(nic.classifyRx(in), nic.rssQueue(in.tuple));
}

TEST(Nic, PerQueueRxCounting)
{
    NicConfig cfg;
    cfg.numQueues = 2;
    Nic nic(cfg);
    std::uint64_t total = 0;
    for (int i = 0; i < 50; ++i) {
        Packet p;
        p.tuple = tuple(1, static_cast<Port>(1024 + i), 2, 80);
        nic.classifyRx(p);
    }
    total = nic.rxCount(0) + nic.rxCount(1);
    EXPECT_EQ(total, 50u);
}

TEST(NicDeath, BadConfigRejected)
{
    NicConfig cfg;
    cfg.numQueues = 0;
    EXPECT_DEATH({ Nic nic(cfg); (void)nic; }, "queue count");
    NicConfig cfg2;
    cfg2.numQueues = 4;
    cfg2.fdirAtr = true;
    cfg2.atrTableSize = 1000;   // not a power of two
    EXPECT_DEATH({ Nic nic(cfg2); (void)nic; }, "power of two");
    NicConfig cfg3;
    cfg3.numQueues = 4;
    cfg3.fdirAtr = true;
    EXPECT_DEATH(
        {
            Nic nic(cfg3);
            nic.setAtrCapacityClamp(6);   // not a power of two
        },
        "power of two");
}

} // anonymous namespace
} // namespace fsim
