/**
 * @file
 * Overload-control tests: admission conservation under pressure, SYN
 * ingress gate accounting, health-probe exemption, same-seed
 * determinism with the subsystem armed, and the proxy's half-open
 * backend readmission when the backend is still down at probe time.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace fsim
{
namespace
{

/** Parse @p spec into @p cfg or fail the test with the parser error. */
void
armOverload(ExperimentConfig &cfg, const std::string &spec)
{
    std::string err;
    ASSERT_TRUE(parseOverloadSpec(spec, cfg.machine.overload, err))
        << err;
}

TEST(Overload, AdmissionCountersConserveUnderPressure)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::base2632();
    cfg.concurrencyPerCore = 120;   // well past 2 cores' capacity
    cfg.clientTimeout = ticksFromMsec(20);
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.05;
    armOverload(cfg,
                "budget=128,gate=16,deadline_ms=5,cap=64,"
                "high=0.3,critical=0.7,low=0.15");

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    AdmissionController *adm = bed.admission();
    ASSERT_NE(adm, nullptr);

    // Every offered connection got exactly one verdict...
    EXPECT_EQ(adm->offered(),
              adm->admitted() + adm->degraded() + adm->shed());
    // ...and every admitted one is either finished or still in flight.
    EXPECT_EQ(adm->admitted() + adm->degraded(),
              adm->released() + adm->inflightTotal());
    EXPECT_EQ(adm->releaseUnderflows(), 0u);
    // The shed reasons decompose the total.
    EXPECT_EQ(adm->shed(), adm->shedDeadline() + adm->shedWorkerCap() +
                               adm->shedPressure());
    EXPECT_TRUE(r.overload.enabled);
    EXPECT_EQ(r.invariants.violationCount, 0u);
    // The closed loop still made real progress while shedding.
    EXPECT_GT(r.served, 100u);
}

TEST(Overload, SynGateDropsAreAccountedOnlyWhenArmed)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::base2632();
    cfg.concurrencyPerCore = 150;
    cfg.clientTimeout = ticksFromMsec(20);
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.04;

    // Gate off: the counter must stay zero (also an invariant).
    armOverload(cfg, "budget=0,deadline_ms=0,cap=0,high=0.5");
    {
        Testbed bed(cfg);
        ExperimentResult r = bed.run();
        EXPECT_EQ(r.overload.synGateDropped, 0u);
        EXPECT_EQ(r.invariants.violationCount, 0u);
    }

    // A tiny gate under the same offered load must visibly drop SYNs,
    // and what the accept path sees can never exceed what it admits.
    armOverload(cfg, "gate=4,high=0.5");
    {
        Testbed bed(cfg);
        ExperimentResult r = bed.run();
        const KernelStats &ks = bed.machine().kernel().stats();
        EXPECT_GT(r.overload.synGateDropped, 0u);
        EXPECT_EQ(r.overload.synGateDropped, ks.synGateDropped);
        EXPECT_EQ(r.invariants.violationCount, 0u);
        EXPECT_GT(r.served, 100u);
    }
}

TEST(Overload, HealthProbesBypassEveryShedLayer)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::base2632();
    cfg.concurrencyPerCore = 150;
    cfg.clientHealthEvery = 8;
    cfg.clientTimeout = ticksFromMsec(20);
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.05;
    // Aggressive shedding everywhere a normal flow can be refused.
    armOverload(cfg,
                "budget=64,gate=8,deadline_ms=2,cap=32,brownout=1,"
                "health_bytes=32,high=0.05,critical=0.5,low=0.02");

    Testbed bed(cfg);
    bed.run();
    AdmissionController *adm = bed.admission();
    ASSERT_NE(adm, nullptr);
    ASSERT_GT(adm->healthOffered(), 0u);
    // The priority class is never shed at the admission gate...
    EXPECT_EQ(adm->healthAdmitted(), adm->healthOffered());
    // ...and the kernel-level gates spare its marked packets too, so
    // probes only fail if their flow genuinely broke.
    EXPECT_EQ(bed.load().healthFailed(), 0u);
    EXPECT_GT(bed.load().healthCompleted(), 0u);
}

TEST(Overload, SameSeedSameFingerprintWithOverloadArmed)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kNginx;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.concurrencyPerCore = 100;
    cfg.clientHealthEvery = 16;
    cfg.clientTimeout = ticksFromMsec(20);
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.04;
    armOverload(cfg,
                "budget=128,gate=16,deadline_ms=5,cap=64,brownout=1,"
                "health_bytes=32,high=0.1,critical=0.5,low=0.05");

    ExperimentResult a = runExperiment(cfg);
    ExperimentResult b = runExperiment(cfg);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_GT(a.overload.offered, 0u);
    EXPECT_EQ(a.overload.offered, b.overload.offered);
    EXPECT_EQ(a.overload.shed, b.overload.shed);
    EXPECT_EQ(a.overload.synGateDropped, b.overload.synGateDropped);
}

/**
 * The ISSUE's half-open scenario: a backend that is still down when its
 * ejection period expires. The circuit breaker readmits it half-open
 * (one probe's worth of trust: consecFails = threshold - 1), the probe
 * fails, and the very next failure re-ejects it — no second readmission
 * sneaks in between, and the backend ends the run ejected.
 */
TEST(Overload, ProxyHalfOpenReadmissionWithBackendStillDown)
{
    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 2;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.concurrencyPerCore = 30;
    cfg.backendCount = 2;
    cfg.backendTimeout = ticksFromMsec(2);   // ejection sit-out = 8ms
    cfg.clientTimeout = ticksFromMsec(20);
    cfg.warmupSec = 0.0;
    cfg.measureSec = 0.08;   // several eject -> probe -> re-eject cycles
    std::string err;
    // Backend 0 is dead for the entire run, so every half-open probe
    // that readmits it is guaranteed to fail.
    ASSERT_TRUE(parseFaultPlan("backend_down@0-10:target=0", cfg.faults,
                               err))
        << err;

    Testbed bed(cfg);
    ExperimentResult r = bed.run();
    auto *px = dynamic_cast<Proxy *>(&bed.app());
    ASSERT_NE(px, nullptr);

    // The breaker probed at least once and re-ejected on the failure.
    EXPECT_GE(px->backendReadmissions(), 1u);
    EXPECT_GE(px->backendEjections(), 2u);
    // One ejection per readmission plus the initial one; if the run
    // happens to end inside a half-open window the counts match
    // exactly. Were a probe double-readmitted, readmissions would
    // outnumber ejections.
    EXPECT_EQ(px->backendEjections() - px->backendReadmissions(),
              px->backendEjected(0) ? 1u : 0u);
    EXPECT_LE(px->backendReadmissions(), px->backendEjections());
    // The healthy backend never trips its breaker...
    EXPECT_FALSE(px->backendEjected(1));
    // ...and carries the load: the fleet keeps completing sessions.
    EXPECT_GT(r.served, 200u);
    EXPECT_GT(bed.load().completed(), bed.load().failed());
}

} // anonymous namespace
} // namespace fsim
