/**
 * @file
 * Unit tests for the ephemeral port allocator, including the RFD
 * core-encoding policy.
 */

#include <gtest/gtest.h>

#include <set>

#include "tcp/port_alloc.hh"

namespace fsim
{
namespace
{

TEST(PortAlloc, AllocatesUniquePorts)
{
    PortAllocator pa(32768, 32867);   // 100 ports
    std::set<Port> got;
    for (int i = 0; i < 100; ++i) {
        Port p = pa.alloc(1, 80);
        ASSERT_NE(p, 0);
        EXPECT_TRUE(got.insert(p).second);
        EXPECT_GE(p, 32768);
        EXPECT_LE(p, 32867);
    }
    EXPECT_EQ(pa.alloc(1, 80), 0) << "range exhausted";
    EXPECT_EQ(pa.inUseCount(), 100u);
}

TEST(PortAlloc, PerDestinationIndependence)
{
    PortAllocator pa(32768, 32769);   // 2 ports
    EXPECT_NE(pa.alloc(1, 80), 0);
    EXPECT_NE(pa.alloc(1, 80), 0);
    EXPECT_EQ(pa.alloc(1, 80), 0);
    // A different destination has its own namespace (four-tuple reuse).
    EXPECT_NE(pa.alloc(2, 80), 0);
    EXPECT_NE(pa.alloc(1, 443), 0);
}

TEST(PortAlloc, ReleaseMakesReusable)
{
    PortAllocator pa(32768, 32769);
    Port a = pa.alloc(1, 80);
    Port b = pa.alloc(1, 80);
    (void)b;
    EXPECT_EQ(pa.alloc(1, 80), 0);
    EXPECT_TRUE(pa.release(1, 80, a));
    EXPECT_FALSE(pa.release(1, 80, a));
    Port c = pa.alloc(1, 80);
    EXPECT_EQ(c, a);
}

TEST(PortAlloc, ClaimSpecificPort)
{
    PortAllocator pa;
    EXPECT_TRUE(pa.claim(1, 80, 40000));
    EXPECT_FALSE(pa.claim(1, 80, 40000));
    EXPECT_TRUE(pa.inUse(1, 80, 40000));
    EXPECT_TRUE(pa.release(1, 80, 40000));
    EXPECT_FALSE(pa.inUse(1, 80, 40000));
}

TEST(PortAlloc, InUseReflectsState)
{
    PortAllocator pa;
    Port p = pa.alloc(5, 80);
    EXPECT_TRUE(pa.inUse(5, 80, p));
    EXPECT_FALSE(pa.inUse(6, 80, p));
}

/** Property: allocForCore always satisfies (p & mask) == core. */
class PortForCore : public ::testing::TestWithParam<int>
{
};

TEST_P(PortForCore, EncodingHolds)
{
    int ncores = GetParam();
    Port mask = 1;
    while (static_cast<int>(mask) + 1 < ncores)
        mask = static_cast<Port>((mask << 1) | 1);
    if (ncores == 1)
        mask = 0;

    PortAllocator pa;
    for (CoreId c = 0; c < ncores; ++c) {
        for (int i = 0; i < 50; ++i) {
            Port p = pa.allocForCore(9, 80, c, mask);
            ASSERT_NE(p, 0);
            EXPECT_EQ(p & mask, c)
                << "hash(psrc) must equal the initiating core";
            EXPECT_GE(p, pa.lo());
            EXPECT_LE(p, pa.hi());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Cores, PortForCore,
                         ::testing::Values(1, 2, 8, 12, 24));

TEST(PortAlloc, AllocForCoreExhaustsItsStripeOnly)
{
    // mask 3 -> stride 4; range of 8 ports holds 2 per core.
    PortAllocator pa(32768, 32775);
    EXPECT_NE(pa.allocForCore(1, 80, 0, 3), 0);
    EXPECT_NE(pa.allocForCore(1, 80, 0, 3), 0);
    EXPECT_EQ(pa.allocForCore(1, 80, 0, 3), 0);
    // Other cores unaffected.
    EXPECT_NE(pa.allocForCore(1, 80, 1, 3), 0);
}

TEST(PortAlloc, MixedPoliciesCoexist)
{
    PortAllocator pa(32768, 33000);
    Port rfd = pa.allocForCore(1, 80, 2, 7);
    Port any = pa.alloc(1, 80);
    EXPECT_NE(rfd, any);
    EXPECT_TRUE(pa.inUse(1, 80, rfd));
    EXPECT_TRUE(pa.inUse(1, 80, any));
}

} // anonymous namespace
} // namespace fsim
