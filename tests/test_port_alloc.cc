/**
 * @file
 * Unit tests for the ephemeral port allocator, including the RFD
 * core-encoding policy.
 */

#include <gtest/gtest.h>

#include <set>

#include "tcp/port_alloc.hh"

namespace fsim
{
namespace
{

TEST(PortAlloc, AllocatesUniquePorts)
{
    PortAllocator pa(32768, 32867);   // 100 ports
    std::set<Port> got;
    for (int i = 0; i < 100; ++i) {
        Port p = pa.alloc(1, 80);
        ASSERT_NE(p, 0);
        EXPECT_TRUE(got.insert(p).second);
        EXPECT_GE(p, 32768);
        EXPECT_LE(p, 32867);
    }
    EXPECT_EQ(pa.alloc(1, 80), 0) << "range exhausted";
    EXPECT_EQ(pa.inUseCount(), 100u);
}

TEST(PortAlloc, PerDestinationIndependence)
{
    PortAllocator pa(32768, 32769);   // 2 ports
    EXPECT_NE(pa.alloc(1, 80), 0);
    EXPECT_NE(pa.alloc(1, 80), 0);
    EXPECT_EQ(pa.alloc(1, 80), 0);
    // A different destination has its own namespace (four-tuple reuse).
    EXPECT_NE(pa.alloc(2, 80), 0);
    EXPECT_NE(pa.alloc(1, 443), 0);
}

TEST(PortAlloc, ReleaseMakesReusable)
{
    PortAllocator pa(32768, 32769);
    Port a = pa.alloc(1, 80);
    Port b = pa.alloc(1, 80);
    (void)b;
    EXPECT_EQ(pa.alloc(1, 80), 0);
    EXPECT_TRUE(pa.release(1, 80, a));
    EXPECT_FALSE(pa.release(1, 80, a));
    Port c = pa.alloc(1, 80);
    EXPECT_EQ(c, a);
}

TEST(PortAlloc, ClaimSpecificPort)
{
    PortAllocator pa;
    EXPECT_TRUE(pa.claim(1, 80, 40000));
    EXPECT_FALSE(pa.claim(1, 80, 40000));
    EXPECT_TRUE(pa.inUse(1, 80, 40000));
    EXPECT_TRUE(pa.release(1, 80, 40000));
    EXPECT_FALSE(pa.inUse(1, 80, 40000));
}

TEST(PortAlloc, InUseReflectsState)
{
    PortAllocator pa;
    Port p = pa.alloc(5, 80);
    EXPECT_TRUE(pa.inUse(5, 80, p));
    EXPECT_FALSE(pa.inUse(6, 80, p));
}

/** Property: allocForCore always satisfies (p & mask) == core. */
class PortForCore : public ::testing::TestWithParam<int>
{
};

TEST_P(PortForCore, EncodingHolds)
{
    int ncores = GetParam();
    Port mask = 1;
    while (static_cast<int>(mask) + 1 < ncores)
        mask = static_cast<Port>((mask << 1) | 1);
    if (ncores == 1)
        mask = 0;

    PortAllocator pa;
    for (CoreId c = 0; c < ncores; ++c) {
        for (int i = 0; i < 50; ++i) {
            Port p = pa.allocForCore(9, 80, c, mask);
            ASSERT_NE(p, 0);
            EXPECT_EQ(p & mask, c)
                << "hash(psrc) must equal the initiating core";
            EXPECT_GE(p, pa.lo());
            EXPECT_LE(p, pa.hi());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Cores, PortForCore,
                         ::testing::Values(1, 2, 8, 12, 24));

TEST(PortAlloc, AllocForCoreExhaustsItsStripeOnly)
{
    // mask 3 -> stride 4; range of 8 ports holds 2 per core.
    PortAllocator pa(32768, 32775);
    EXPECT_NE(pa.allocForCore(1, 80, 0, 3), 0);
    EXPECT_NE(pa.allocForCore(1, 80, 0, 3), 0);
    EXPECT_EQ(pa.allocForCore(1, 80, 0, 3), 0);
    // Other cores unaffected.
    EXPECT_NE(pa.allocForCore(1, 80, 1, 3), 0);
}

TEST(PortAlloc, WraparoundSearchTerminatesAndStaysExact)
{
    // The rotating next-fit hint wraps past hi_ constantly under churn;
    // the search must terminate (never loop forever), never hand out an
    // in-use port, and exhaust cleanly to 0 each cycle.
    PortAllocator pa(40000, 40099);   // 100 ports
    std::vector<Port> held;
    for (int cycle = 0; cycle < 50; ++cycle) {
        std::set<Port> got;
        for (int i = 0; i < 100; ++i) {
            Port p = pa.alloc(1, 80);
            ASSERT_NE(p, 0) << "cycle " << cycle << " alloc " << i;
            EXPECT_TRUE(got.insert(p).second)
                << "port " << p << " aliased in cycle " << cycle;
            held.push_back(p);
        }
        EXPECT_EQ(pa.alloc(1, 80), 0) << "exhaustion must return 0";
        EXPECT_EQ(pa.inUseCount(), 100u);
        for (Port p : held)
            EXPECT_TRUE(pa.release(1, 80, p));
        held.clear();
        EXPECT_EQ(pa.inUseCount(), 0u);
    }
}

TEST(PortAlloc, FragmentedReuseNeverAliases)
{
    // Release a scattered third of a full range, then refill: the
    // allocator must hand back exactly the released ports, once each.
    PortAllocator pa(50000, 50299);   // 300 ports
    std::vector<Port> all;
    for (int i = 0; i < 300; ++i) {
        Port p = pa.alloc(9, 443);
        ASSERT_NE(p, 0);
        all.push_back(p);
    }
    std::set<Port> freed;
    for (std::size_t i = 0; i < all.size(); i += 3) {
        freed.insert(all[i]);
        EXPECT_TRUE(pa.release(9, 443, all[i]));
    }
    std::set<Port> refilled;
    for (std::size_t i = 0; i < freed.size(); ++i) {
        Port p = pa.alloc(9, 443);
        ASSERT_NE(p, 0);
        EXPECT_TRUE(freed.count(p))
            << "port " << p << " was not in the freed set";
        EXPECT_TRUE(refilled.insert(p).second);
    }
    EXPECT_EQ(refilled, freed);
    EXPECT_EQ(pa.alloc(9, 443), 0);
    EXPECT_EQ(pa.inUseCount(), 300u);
}

TEST(PortAlloc, AllocForCoreWraparoundExhaustsCleanly)
{
    // The striped (RFD) search also wraps; exhaustion of one stripe
    // must terminate with 0 while other stripes keep allocating, cycle
    // after cycle.
    PortAllocator pa(32768, 32799);   // 32 ports, 8 per core at mask 3
    for (int cycle = 0; cycle < 20; ++cycle) {
        std::vector<Port> got;
        for (int i = 0; i < 8; ++i) {
            Port p = pa.allocForCore(4, 80, 2, 3);
            ASSERT_NE(p, 0);
            EXPECT_EQ(p & 3, 2);
            got.push_back(p);
        }
        EXPECT_EQ(pa.allocForCore(4, 80, 2, 3), 0);
        Port probe = pa.allocForCore(4, 80, 3, 3);
        EXPECT_NE(probe, 0)
            << "other stripes unaffected by core 2's exhaustion";
        EXPECT_TRUE(pa.release(4, 80, probe));
        for (Port p : got)
            EXPECT_TRUE(pa.release(4, 80, p));
        EXPECT_EQ(pa.inUseCount(), 0u);
    }
}

TEST(PortAlloc, MixedPoliciesCoexist)
{
    PortAllocator pa(32768, 33000);
    Port rfd = pa.allocForCore(1, 80, 2, 7);
    Port any = pa.alloc(1, 80);
    EXPECT_NE(rfd, any);
    EXPECT_TRUE(pa.inUse(1, 80, rfd));
    EXPECT_TRUE(pa.inUse(1, 80, any));
}

} // anonymous namespace
} // namespace fsim
