/**
 * @file
 * Unit tests for Receive Flow Deliver: the hash, the three classification
 * rules, steering targets and port-candidate generation (including the
 * randomized-bits hardening).
 */

#include <gtest/gtest.h>

#include <set>

#include "fastsocket/rfd.hh"

namespace fsim
{
namespace
{

Packet
pkt(Port sport, Port dport)
{
    Packet p;
    p.tuple = FiveTuple{1, 2, sport, dport};
    return p;
}

TEST(Rfd, HashMaskRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(ReceiveFlowDeliver::hashMask(1), 0);
    EXPECT_EQ(ReceiveFlowDeliver::hashMask(2), 1);
    EXPECT_EQ(ReceiveFlowDeliver::hashMask(8), 7);
    EXPECT_EQ(ReceiveFlowDeliver::hashMask(12), 15);
    EXPECT_EQ(ReceiveFlowDeliver::hashMask(24), 31);
}

TEST(Rfd, DefaultHashIsLowBits)
{
    ReceiveFlowDeliver rfd(16);
    EXPECT_EQ(rfd.hash(0x1230), 0);
    EXPECT_EQ(rfd.hash(0x1235), 5);
    EXPECT_EQ(rfd.hash(0x123F), 15);
}

TEST(Rfd, Rule1WellKnownSourceIsActive)
{
    ReceiveFlowDeliver rfd(8);
    // Reply from an origin server on port 80.
    EXPECT_EQ(rfd.classify(pkt(80, 40000), nullptr),
              PacketClass::kActiveIncoming);
    EXPECT_EQ(rfd.classify(pkt(1023, 40000), nullptr),
              PacketClass::kActiveIncoming);
}

TEST(Rfd, Rule2WellKnownDestinationIsPassive)
{
    ReceiveFlowDeliver rfd(8);
    EXPECT_EQ(rfd.classify(pkt(40000, 80), nullptr),
              PacketClass::kPassiveIncoming);
}

TEST(Rfd, Rule1TakesPrecedenceOverRule2)
{
    ReceiveFlowDeliver rfd(8);
    // Both ports well-known: rule 1 fires first.
    EXPECT_EQ(rfd.classify(pkt(80, 443), nullptr),
              PacketClass::kActiveIncoming);
}

TEST(Rfd, Rule3ProbesListeners)
{
    ReceiveFlowDeliver rfd(8, /*precise=*/true);
    auto has_listener = [](IpAddr, Port p) { return p == 8080; };
    EXPECT_EQ(rfd.classify(pkt(40000, 8080), has_listener),
              PacketClass::kPassiveIncoming);
    EXPECT_EQ(rfd.classify(pkt(40000, 9090), has_listener),
              PacketClass::kActiveIncoming);
}

TEST(Rfd, ImpreciseModeSkipsProbe)
{
    ReceiveFlowDeliver rfd(8, /*precise=*/false);
    bool probed = false;
    auto has_listener = [&](IpAddr, Port) {
        probed = true;
        return true;
    };
    rfd.classify(pkt(40000, 8080), has_listener);
    EXPECT_FALSE(probed);
}

TEST(Rfd, SteerTargetOnlyForActive)
{
    ReceiveFlowDeliver rfd(8);
    Packet p = pkt(80, 40005);
    EXPECT_EQ(rfd.steerTarget(p, PacketClass::kActiveIncoming),
              rfd.hash(40005));
    EXPECT_EQ(rfd.steerTarget(p, PacketClass::kPassiveIncoming),
              kInvalidCore);
}

TEST(Rfd, SteerTargetWrapsForeignPorts)
{
    // 12 cores, mask 15: hashes 12..15 never produced by our allocator
    // but must map somewhere sane for stray traffic.
    ReceiveFlowDeliver rfd(12);
    Packet p = pkt(80, 13);   // hash 13 >= 12
    CoreId t = rfd.steerTarget(p, PacketClass::kActiveIncoming);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 12);
}

TEST(Rfd, SingleCoreAlwaysHashesToZero)
{
    ReceiveFlowDeliver rfd(1);
    for (Port p : {0, 1, 12345, 65535})
        EXPECT_EQ(rfd.hash(p), 0);
    EXPECT_EQ(rfd.candidateCount(), 1u << 16);
}

/** Property: every port candidate hashes back to its core. */
class RfdCandidates : public ::testing::TestWithParam<int>
{
};

TEST_P(RfdCandidates, RoundTrip)
{
    int ncores = GetParam();
    ReceiveFlowDeliver rfd(ncores);
    for (CoreId c = 0; c < ncores; ++c) {
        std::set<Port> seen;
        for (std::uint32_t i = 0; i < 64 && i < rfd.candidateCount();
             ++i) {
            Port p = rfd.portCandidate(c, i);
            EXPECT_EQ(rfd.hash(p), c);
            EXPECT_TRUE(seen.insert(p).second)
                << "candidates must be distinct";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Cores, RfdCandidates,
                         ::testing::Values(1, 2, 8, 12, 24, 64));

TEST(Rfd, RandomizedBitsStillRoundTrip)
{
    Rng rng(1234);
    ReceiveFlowDeliver rfd(16);
    rfd.randomizeBits(rng);
    EXPECT_EQ(rfd.hashBits().size(), 4u);
    // Bits must be distinct positions within a 16-bit port.
    std::set<int> bits(rfd.hashBits().begin(), rfd.hashBits().end());
    EXPECT_EQ(bits.size(), 4u);
    for (int b : bits) {
        EXPECT_GE(b, 0);
        EXPECT_LT(b, 16);
    }
    for (CoreId c = 0; c < 16; ++c)
        for (std::uint32_t i = 0; i < 32; ++i)
            EXPECT_EQ(rfd.hash(rfd.portCandidate(c, i)), c);
}

TEST(Rfd, RandomizedBitsDifferAcrossSeeds)
{
    ReceiveFlowDeliver a(16), b(16);
    Rng ra(1), rb(2);
    a.randomizeBits(ra);
    b.randomizeBits(rb);
    // Not guaranteed different for every pair of seeds, but these are.
    EXPECT_NE(a.hashBits(), b.hashBits());
}

TEST(Rfd, CandidateCountMatchesFreeBits)
{
    ReceiveFlowDeliver rfd(24);   // 5 hash bits
    EXPECT_EQ(rfd.candidateCount(), 1u << 11);
}

} // anonymous namespace
} // namespace fsim
