/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hh"

namespace fsim
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedStillWorks)
{
    Rng r(0);
    // SplitMix expansion guarantees non-degenerate state.
    std::set<std::uint64_t> vals;
    for (int i = 0; i < 16; ++i)
        vals.insert(r.next());
    EXPECT_GT(vals.size(), 14u);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.range(13), 13u);
}

TEST(Rng, RangeOfOneIsAlwaysZero)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.range(1), 0u);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

/** Property over seeds: distribution moments are sane. */
class RngMoments : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngMoments, UniformMeanNearHalf)
{
    Rng r(GetParam());
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngMoments, ExponentialMeanMatches)
{
    Rng r(GetParam());
    const double mean = 250.0;
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = r.exponential(mean);
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05);
}

TEST_P(RngMoments, RangeIsRoughlyUniform)
{
    Rng r(GetParam());
    const std::uint64_t buckets = 8;
    int counts[8] = {};
    const int n = 16000;
    for (int i = 0; i < n; ++i)
        ++counts[r.range(buckets)];
    for (int b = 0; b < 8; ++b)
        EXPECT_NEAR(counts[b], n / 8, n / 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngMoments,
                         ::testing::Values(1, 42, 1234567, 0xdeadbeef));

} // anonymous namespace
} // namespace fsim
