/**
 * @file
 * Scalability-shape tests: the qualitative results of the paper's
 * evaluation must hold in the simulation (who wins, roughly by how much,
 * where locality appears). Uses moderate core counts to stay fast.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace fsim
{
namespace
{

ExperimentResult
run(AppKind app, const KernelConfig &kc, int cores,
    NicConfig nic = NicConfig{})
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.machine.cores = cores;
    cfg.machine.kernel = kc;
    cfg.machine.nic = nic;
    cfg.concurrencyPerCore = 120;
    cfg.warmupSec = 0.02;
    cfg.measureSec = 0.05;
    return runExperiment(cfg);
}

TEST(Scaling, SingleCoreThroughputsAreClose)
{
    // Paper 4.2.3: "the single CPU core throughputs are very close among
    // all the three kernels".
    double base = run(AppKind::kNginx, KernelConfig::base2632(), 1).cps;
    double l313 = run(AppKind::kNginx, KernelConfig::linux313(), 1).cps;
    double fast = run(AppKind::kNginx, KernelConfig::fastsocket(), 1).cps;
    EXPECT_NEAR(l313, base, base * 0.2);
    EXPECT_NEAR(fast, base, base * 0.25);
}

TEST(Scaling, FastsocketWinsAtEightCoresNginx)
{
    double base = run(AppKind::kNginx, KernelConfig::base2632(), 8).cps;
    double l313 = run(AppKind::kNginx, KernelConfig::linux313(), 8).cps;
    double fast = run(AppKind::kNginx, KernelConfig::fastsocket(), 8).cps;
    EXPECT_GT(fast, l313);
    EXPECT_GT(fast, base * 1.2);
}

TEST(Scaling, FastsocketScalesNearLinearly)
{
    double one = run(AppKind::kNginx, KernelConfig::fastsocket(), 1).cps;
    double eight = run(AppKind::kNginx, KernelConfig::fastsocket(), 8).cps;
    EXPECT_GT(eight, one * 6.0) << "near-linear scaling expected";
}

TEST(Scaling, BaselineSaturatesWellBelowLinear)
{
    double one = run(AppKind::kNginx, KernelConfig::base2632(), 1).cps;
    double twelve = run(AppKind::kNginx, KernelConfig::base2632(), 12).cps;
    EXPECT_LT(twelve, one * 11.0) << "global locks must hurt";
    EXPECT_GT(twelve, one * 2.0) << "but not collapse to nothing";
}

TEST(Scaling, HaproxyFastsocketBeatsOthersAtEight)
{
    double base = run(AppKind::kHaproxy, KernelConfig::base2632(), 8).cps;
    double l313 = run(AppKind::kHaproxy, KernelConfig::linux313(), 8).cps;
    double fast = run(AppKind::kHaproxy, KernelConfig::fastsocket(), 8).cps;
    EXPECT_GT(fast, l313);
    EXPECT_GT(l313, base * 0.9);
    EXPECT_GT(fast, base * 1.3);
}

TEST(Locality, RssLocalProportionIsOneOverCores)
{
    // Figure 5(b), leftmost bar: with RSS only, ~1/16 = 6.2% of active
    // incoming packets land on the owning core.
    ExperimentResult r = run(AppKind::kHaproxy, KernelConfig::fastsocket(),
                             8);
    EXPECT_NEAR(r.localPktProportion, 1.0 / 8, 0.06);
}

TEST(Locality, PerfectFilteringReachesFullLocality)
{
    NicConfig nic;
    nic.fdirPerfect = true;
    nic.perfectPortMask = ReceiveFlowDeliver::hashMask(8);
    ExperimentResult r = run(AppKind::kHaproxy, KernelConfig::fastsocket(),
                             8, nic);
    EXPECT_GT(r.localPktProportion, 0.999);
}

TEST(Locality, AtrIsBestEffortBetween)
{
    NicConfig nic;
    nic.fdirAtr = true;
    ExperimentResult rssr = run(AppKind::kHaproxy,
                                KernelConfig::fastsocket(), 8);
    ExperimentResult atr = run(AppKind::kHaproxy,
                               KernelConfig::fastsocket(), 8, nic);
    EXPECT_GT(atr.localPktProportion, rssr.localPktProportion);
    EXPECT_LT(atr.localPktProportion, 1.0);
}

TEST(Locality, RfdReducesL3MissRate)
{
    // Figure 5(a): steering to the owning core cuts coherence misses.
    ExperimentResult fast = run(AppKind::kHaproxy,
                                KernelConfig::fastsocket(), 8);
    KernelConfig no_loc = KernelConfig::base2632();
    ExperimentResult base = run(AppKind::kHaproxy, no_loc, 8);
    EXPECT_LT(fast.l3MissRate, base.l3MissRate);
}

TEST(LockProfile, BaselineOrderingMatchesTable1)
{
    // Table 1 ordering: dcache_lock is by far the hottest class, ehash
    // by far the coldest.
    ExperimentResult r = run(AppKind::kHaproxy, KernelConfig::base2632(),
                             8);
    auto cont = [&r](const char *name) {
        auto it = r.locks.find(name);
        return it == r.locks.end() ? 0ull : it->second.contentions;
    };
    EXPECT_GT(cont("dcache_lock"), cont("ehash.lock"));
    EXPECT_GT(cont("dcache_lock") + cont("inode_lock") + cont("slock") +
                  cont("ep.lock") + cont("base.lock"),
              0ull);
}

TEST(LockProfile, FastsocketZeroContentionEverywhere)
{
    ExperimentResult r = run(AppKind::kHaproxy,
                             KernelConfig::fastsocket(), 8);
    for (const auto &kv : r.locks)
        EXPECT_EQ(kv.second.contentions, 0u) << kv.first;
}

TEST(LockProfile, FeatureBitsRemoveTheirLocks)
{
    // +V alone kills dcache/inode acquisitions but leaves slock traffic.
    KernelConfig v = KernelConfig::base2632();
    v.fastVfs = true;
    ExperimentResult r = run(AppKind::kHaproxy, v, 4);
    EXPECT_EQ(r.locks.at("dcache_lock").acquisitions, 0u);
    EXPECT_EQ(r.locks.at("inode_lock").acquisitions, 0u);
    EXPECT_GT(r.locks.at("slock").acquisitions, 0u);
}

TEST(Scaling, ReuseportWalkCostGrowsWithProcesses)
{
    // Section 2.1: inet_lookup_listener walks the whole clone chain.
    ExperimentConfig cfg;
    cfg.machine.cores = 8;
    cfg.machine.kernel = KernelConfig::linux313();
    cfg.concurrencyPerCore = 60;
    cfg.warmupSec = 0.01;
    cfg.measureSec = 0.03;
    Testbed bed(cfg);
    bed.run();
    const KernelStats &ks = bed.machine().kernel().stats();
    // Average walked entries per lookup ~ number of clones (8).
    double avg = static_cast<double>(ks.listenChainWalked) /
                 static_cast<double>(ks.listenLookups);
    EXPECT_GT(avg, 6.0);
}

} // anonymous namespace
} // namespace fsim
