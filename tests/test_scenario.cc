/**
 * @file
 * Scenario fuzzer tests: generation validity, serialize/parse
 * round-trips, rejection of invalid reproducers, shrinking against
 * synthetic predicates, and a real end-to-end fuzzed run.
 */

#include <gtest/gtest.h>

#include "check/scenario.hh"

namespace fsim
{
namespace
{

TEST(Scenario, RandomScenariosAreValidByConstruction)
{
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        Scenario s = randomScenario(rng);
        EXPECT_GE(s.cores, 1);
        EXPECT_LE(s.cores, 8);
        EXPECT_GT(s.maxConns, 0u);
        EXPECT_GT(s.concurrencyPerCore, 0);
        EXPECT_GE(s.requestsPerConn, 1);
        EXPECT_LE(s.lossRate, 0.05);
        if (s.lossRate > 0.0) {
            EXPECT_GT(s.clientTimeoutSec, 0.0)
                << "loss without a client timeout cannot drain";
        }
        if (s.localEstablished) {
            EXPECT_TRUE(s.localListen && s.rfd)
                << "feature lattice: E requires L and R";
        }
        // Round-trip through the reproducer format.
        Scenario back;
        std::string err;
        ASSERT_TRUE(parseScenario(serializeScenario(s), back, err))
            << err;
        EXPECT_EQ(back.seed, s.seed);
        EXPECT_EQ(back.cores, s.cores);
        EXPECT_EQ(back.kernel, s.kernel);
        EXPECT_EQ(back.maxConns, s.maxConns);
        EXPECT_EQ(back.listenBacklog, s.listenBacklog);
        EXPECT_EQ(back.uma, s.uma);
        EXPECT_DOUBLE_EQ(back.lossRate, s.lossRate);
    }
}

TEST(Scenario, GeneratorCoversTheSpace)
{
    Rng rng(5);
    bool sawHaproxy = false, sawLoss = false, sawBacklog = false;
    bool sawCustom = false, sawUma = false;
    for (int i = 0; i < 100; ++i) {
        Scenario s = randomScenario(rng);
        sawHaproxy |= s.app == AppKind::kHaproxy;
        sawLoss |= s.lossRate > 0.0;
        sawBacklog |= s.listenBacklog != 0;
        sawCustom |= s.kernel == "custom";
        sawUma |= s.uma;
    }
    EXPECT_TRUE(sawHaproxy && sawLoss && sawBacklog && sawCustom &&
                sawUma);
}

TEST(Scenario, ParseIgnoresCommentsAndUnknownKeys)
{
    Scenario s;
    std::string err;
    ASSERT_TRUE(parseScenario("# comment\n\nseed = 5\ncores=3\n"
                              "futureKnob = 1\nmaxConns = 10\n",
                              s, err))
        << err;
    EXPECT_EQ(s.seed, 5u);
    EXPECT_EQ(s.cores, 3);
}

TEST(Scenario, ParseRejectsInvalidInput)
{
    Scenario s;
    std::string err;
    EXPECT_FALSE(parseScenario("not a key value line\n", s, err));
    EXPECT_FALSE(parseScenario("cores = banana\n", s, err));
    EXPECT_FALSE(parseScenario("cores = 0\n", s, err));
    EXPECT_FALSE(parseScenario("kernel = windows\n", s, err));
    EXPECT_FALSE(parseScenario("maxConns = 0\n", s, err));
    EXPECT_FALSE(
        parseScenario("kernel = custom\nlocalEstablished = 1\n", s, err))
        << "E without L and R must be rejected";
    EXPECT_FALSE(parseScenario("lossRate = 0.1\n", s, err))
        << "loss without a timeout must be rejected";
    EXPECT_FALSE(err.empty());
}

TEST(Scenario, ToConfigAppliesEveryKnob)
{
    Scenario s;
    s.cores = 6;
    s.kernel = "custom";
    s.fastVfs = true;
    s.localListen = true;
    s.rfd = false;
    s.app = AppKind::kHaproxy;
    s.maxConns = 777;
    s.listenBacklog = 32;
    s.uma = true;
    s.acceptMutex = true;
    s.traceEnabled = false;
    ExperimentConfig cfg = s.toConfig();
    EXPECT_EQ(cfg.machine.cores, 6);
    EXPECT_TRUE(cfg.machine.kernel.fastVfs);
    EXPECT_TRUE(cfg.machine.kernel.localListen);
    EXPECT_FALSE(cfg.machine.kernel.rfd);
    EXPECT_EQ(cfg.machine.kernel.flavor, KernelFlavor::kBase2632);
    EXPECT_EQ(cfg.maxConns, 777u);
    EXPECT_EQ(cfg.listenBacklog, 32u);
    EXPECT_TRUE(cfg.acceptMutex);
    EXPECT_FALSE(cfg.machine.traceEnabled);
    EXPECT_EQ(cfg.machine.costs.numaNodeSize, 0) << "uma costs";
    EXPECT_EQ(cfg.checkLevel, CheckLevel::kPeriodic);

    s.kernel = "fastsocket";
    EXPECT_EQ(s.toConfig().machine.kernel.flavor,
              KernelFlavor::kFastsocket);
}

TEST(Scenario, ShrinkConvergesOnSyntheticPredicate)
{
    // "Fails whenever cores >= 3": the shrinker must walk everything
    // else to its floor and stop cores right at the boundary.
    Scenario big;
    big.cores = 8;
    big.kernel = "fastsocket";
    big.maxConns = 2000;
    big.concurrencyPerCore = 100;
    big.lossRate = 0.03;
    big.clientTimeoutSec = 0.1;
    big.requestsPerConn = 4;
    big.listenBacklog = 512;
    big.acceptMutex = true;
    big.uma = true;
    auto fails = [](const Scenario &s) { return s.cores >= 3; };
    Scenario small = shrinkScenario(big, fails, 500);
    EXPECT_EQ(small.cores, 3);
    EXPECT_EQ(small.maxConns, 50u);
    EXPECT_EQ(small.lossRate, 0.0);
    EXPECT_EQ(small.requestsPerConn, 1);
    EXPECT_EQ(small.listenBacklog, 0u);
    EXPECT_FALSE(small.acceptMutex);
    EXPECT_FALSE(small.uma);
    EXPECT_EQ(small.kernel, "base2632");
    EXPECT_TRUE(fails(small));
}

TEST(Scenario, ShrinkRespectsBudget)
{
    Scenario big;
    big.cores = 8;
    big.maxConns = 2000;
    int calls = 0;
    auto fails = [&calls](const Scenario &) {
        ++calls;
        return true;
    };
    shrinkScenario(big, fails, 7);
    EXPECT_LE(calls, 7);
}

TEST(Scenario, ShrinkKeepsOriginalWhenNothingSmallerFails)
{
    Scenario s;   // defaults are already near the floor
    s.cores = 2;
    s.maxConns = 60;
    auto fails = [&s](const Scenario &c) {
        // Only the exact original fails.
        return c.cores == s.cores && c.maxConns == s.maxConns;
    };
    Scenario out = shrinkScenario(s, fails, 100);
    EXPECT_EQ(out.cores, 2);
    EXPECT_EQ(out.maxConns, 60u);
}

TEST(Scenario, RunScenarioEndToEnd)
{
    Scenario s;
    s.seed = 123;
    s.cores = 2;
    s.maxConns = 200;
    s.concurrencyPerCore = 20;
    s.kernel = "fastsocket";
    ScenarioResult r = runScenario(s);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_TRUE(r.drained);
    EXPECT_TRUE(r.deterministic);
    EXPECT_EQ(r.fingerprint, r.fingerprint2);
    EXPECT_GT(r.invariants.checksRun, 0u);
}

TEST(Scenario, FleetKnobsRoundTripThroughSerialization)
{
    Scenario s;
    s.fleetMachines = 3;
    s.fleetBalancers = 2;
    s.fleetPolicy = "rr";
    s.clientTimeoutSec = 0.05;
    s.faultPlan = "rolling_restart@0.003-0.004:drain_ms=4,down_ms=2";

    Scenario back;
    std::string err;
    ASSERT_TRUE(parseScenario(serializeScenario(s), back, err)) << err;
    EXPECT_EQ(back.fleetMachines, 3);
    EXPECT_EQ(back.fleetBalancers, 2);
    EXPECT_EQ(back.fleetPolicy, "rr");
    EXPECT_EQ(back.faultPlan, s.faultPlan);

    // The fleet block is elided entirely on single-machine scenarios.
    Scenario plain;
    EXPECT_EQ(serializeScenario(plain).find("fleet"), std::string::npos);
}

TEST(Scenario, ParseRejectsInvalidFleetCombos)
{
    Scenario out;
    std::string err;
    // Fleet event kinds demand the fleet tier...
    EXPECT_FALSE(parseScenario(
        "clientTimeoutSec = 0.05\n"
        "faultPlan = machine_crash@0.01-0.02:target=0,mode=rst\n",
        out, err));
    // ...and in-range targets (the orchestrator asserts the range).
    EXPECT_FALSE(parseScenario(
        "fleetMachines = 2\n"
        "clientTimeoutSec = 0.05\n"
        "faultPlan = machine_crash@0.01-0.02:target=5,mode=rst\n",
        out, err));
    EXPECT_FALSE(parseScenario(
        "fleetMachines = 2\n"
        "fleetBalancers = 1\n"
        "clientTimeoutSec = 0.05\n"
        "faultPlan = lb_crash@0.01-0.02:target=1\n",
        out, err));
    EXPECT_FALSE(parseScenario("fleetMachines = 99\n", out, err));
    EXPECT_FALSE(parseScenario("fleetPolicy = lru\n", out, err));
    // The same knobs in valid combination parse fine.
    EXPECT_TRUE(parseScenario(
        "fleetMachines = 2\n"
        "fleetBalancers = 2\n"
        "clientTimeoutSec = 0.05\n"
        "faultPlan = lb_crash@0.01-0.02:target=1\n",
        out, err)) << err;
}

TEST(Scenario, ShrinkDropsFleetTierAndItsEventsFirst)
{
    Scenario big;
    big.fleetMachines = 4;
    big.fleetBalancers = 2;
    big.fleetPolicy = "rr";
    big.clientTimeoutSec = 0.05;
    big.faultPlan = "machine_crash@0.01-0.02:target=3,mode=blackhole;"
                    "loss_burst@0.01-0.02:rate=0.2";

    // A predicate independent of the fleet: the shrinker must leave the
    // tier behind and keep the scenario valid at every step.
    auto fails = [](const Scenario &c) {
        std::string err;
        Scenario parsed;
        EXPECT_TRUE(parseScenario(serializeScenario(c), parsed, err))
            << err;
        return c.lossRate == 0.0;   // always true here
    };
    Scenario out = shrinkScenario(big, fails, 200);
    EXPECT_EQ(out.fleetMachines, 0);
    // The fleet-only event went with the tier; nothing invalid remains.
    EXPECT_EQ(out.faultPlan.find("machine_crash"), std::string::npos);
}

TEST(Scenario, RunFleetScenarioEndToEnd)
{
    Scenario s;
    s.seed = 77;
    s.cores = 2;
    s.maxConns = 300;
    s.concurrencyPerCore = 20;
    s.kernel = "fastsocket";
    s.fleetMachines = 2;
    s.fleetBalancers = 2;
    s.clientTimeoutSec = 0.05;
    s.clientRtoMsec = 5.0;
    s.faultPlan = "machine_crash@0.002-0.008:target=1,mode=rst";
    ScenarioResult r = runScenario(s);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_TRUE(r.drained);
    EXPECT_TRUE(r.deterministic);
    EXPECT_GT(r.invariants.checksRun, 0u);
}

} // anonymous namespace
} // namespace fsim
