/**
 * @file
 * Unit tests for the simulated spinlock / rwlock models.
 *
 * The central properties under test mirror the paper's claims:
 *  - a lock only ever taken from one core never contends (full partition);
 *  - cross-core overlapping critical sections contend and spin;
 *  - spins are bounded by the physical queue (cores x serialized cost);
 *  - sustained cross-core demand drives queueing delay up.
 */

#include <gtest/gtest.h>

#include "cpu/cache_model.hh"
#include "sync/lock_registry.hh"
#include "sync/spinlock.hh"

namespace fsim
{
namespace
{

struct SpinFixture : public ::testing::Test
{
    LockRegistry reg;
    CacheModel cache{4, 400};
    LockClassStats *cls = reg.getClass("test");
    SimSpinLock lock;

    void
    SetUp() override
    {
        lock.init(cls, &cache, 40, 250);
    }
};

TEST_F(SpinFixture, UncontendedAcquireCostsBasePlusCold)
{
    Tick end = lock.runLocked(0, 1000, 500);
    // base 40 + cold line touch 100 + hold 500.
    EXPECT_EQ(end, 1000u + 40 + 100 + 500);
    EXPECT_EQ(cls->acquisitions, 1u);
    EXPECT_EQ(cls->contentions, 0u);
    EXPECT_EQ(cls->waitTicks, 0u);
}

TEST_F(SpinFixture, SingleCoreNeverContends)
{
    Tick t = 0;
    for (int i = 0; i < 1000; ++i)
        t = lock.runLocked(0, t, 500);   // back-to-back, same core
    EXPECT_EQ(cls->acquisitions, 1000u);
    EXPECT_EQ(cls->contentions, 0u);
    EXPECT_EQ(cls->waitTicks, 0u);
}

TEST_F(SpinFixture, CrossCoreOverlapSpins)
{
    Tick end0 = lock.runLocked(0, 1000, 2000);
    EXPECT_GT(end0, 1000u);
    // Core 1 arrives in the middle of core 0's critical section.
    Tick end1 = lock.runLocked(1, 1500, 2000);
    EXPECT_GT(cls->waitTicks, 0u);
    EXPECT_GT(end1, 1500u + 2000u);
}

TEST_F(SpinFixture, OverlapWaitBoundedByCriticalSections)
{
    lock.runLocked(0, 1000, 500);
    // A wildly skewed earlier-cursor acquire must not wait more than a
    // couple of critical sections, even though freeAt is far ahead.
    lock.runLocked(1, 0, 500);
    // 2 * s_eff cap: s_eff >= 500+40+400; ensure wait below queue bound.
    EXPECT_LE(cls->maxWaitTicks, 3u * (500 + 40 + 400 + 4 * 250));
}

TEST_F(SpinFixture, SustainedCrossDemandContends)
{
    // Two cores hammering with gaps far below the serialized cost.
    Tick t0 = 0, t1 = 0;
    for (int i = 0; i < 500; ++i) {
        t0 = lock.runLocked(0, t0, 900);
        t1 = lock.runLocked(1, t1, 900);
    }
    EXPECT_GT(cls->contentions, 100u);
    EXPECT_GT(cls->waitTicks, 0u);
}

TEST_F(SpinFixture, HoldTicksAccumulate)
{
    lock.runLocked(0, 0, 123);
    lock.runLocked(0, 10000, 77);
    EXPECT_EQ(cls->holdTicks, 200u);
}

TEST_F(SpinFixture, LastHolderTracked)
{
    lock.runLocked(2, 0, 10);
    EXPECT_EQ(lock.lastHolder(), 2);
    lock.runLocked(3, 100000, 10);
    EXPECT_EQ(lock.lastHolder(), 3);
}

TEST(SpinLock, NullCacheWorks)
{
    LockRegistry reg;
    SimSpinLock lock;
    lock.init(reg.getClass("x"), nullptr, 40, 0);
    EXPECT_EQ(lock.runLocked(0, 100, 60), 200u);
}

TEST(SpinLock, ClassStatsAggregateAcrossInstances)
{
    LockRegistry reg;
    CacheModel cache(2, 400);
    LockClassStats *cls = reg.getClass("slock");
    SimSpinLock a, b;
    a.init(cls, &cache, 40, 250);
    b.init(cls, &cache, 40, 250);
    a.runLocked(0, 0, 10);
    b.runLocked(1, 0, 10);
    EXPECT_EQ(cls->acquisitions, 2u);
}

struct RwFixture : public ::testing::Test
{
    LockRegistry reg;
    CacheModel cache{4, 400};
    LockClassStats *cls = reg.getClass("rw");
    SimRwLock lock;

    void
    SetUp() override
    {
        lock.init(cls, &cache, 40, 250);
    }
};

TEST_F(RwFixture, ReadersDoNotSerializeEachOther)
{
    Tick e0 = lock.runReadLocked(0, 1000, 500);
    Tick e1 = lock.runReadLocked(1, 1000, 500);
    // Both start immediately (only base + line costs differ).
    EXPECT_LE(e0, 1000u + 40 + 100 + 500);
    EXPECT_LE(e1, 1000u + 40 + 400 + 500);
    EXPECT_EQ(cls->contentions, 0u);
}

TEST_F(RwFixture, WriterWaitsForReaders)
{
    lock.runReadLocked(0, 1000, 2000);
    Tick we = lock.runWriteLocked(1, 1500, 100);
    EXPECT_GT(we, 1500u + 40 + 100);
    EXPECT_GE(cls->contentions, 1u);
}

TEST_F(RwFixture, ReaderWaitsForWriter)
{
    lock.runWriteLocked(0, 1000, 2000);
    std::uint64_t before = cls->contentions;
    lock.runReadLocked(1, 1500, 100);
    EXPECT_GT(cls->contentions, before);
}

/** Property: wait is always bounded by cores x serialized section. */
class SpinWaitBound : public ::testing::TestWithParam<int>
{
};

TEST_P(SpinWaitBound, CapHolds)
{
    int ncores = GetParam();
    LockRegistry reg;
    CacheModel cache(ncores, 400);
    LockClassStats *cls = reg.getClass("b");
    SimSpinLock lock;
    const Tick hold = 700;
    const Tick storm = 250;
    lock.init(cls, &cache, 40, storm);

    Tick t[32] = {};
    for (int i = 0; i < 2000; ++i) {
        int c = i % ncores;
        t[c] = lock.runLocked(c, t[c], hold);
    }
    Tick s_max = hold + 40 + 1000 +
                 storm * static_cast<Tick>(ncores);
    EXPECT_LE(cls->maxWaitTicks,
              static_cast<Tick>(ncores) * s_max);
}

INSTANTIATE_TEST_SUITE_P(Cores, SpinWaitBound,
                         ::testing::Values(2, 4, 8, 16, 24));

} // anonymous namespace
} // namespace fsim
