/**
 * @file
 * Unit tests for counters, distributions and the table printer.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"
#include "stats/table.hh"
#include "sync/lock_registry.hh"

namespace fsim
{
namespace
{

TEST(Counter, IncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.variance(), 0.0);
}

TEST(Distribution, MomentsMatchHandComputation)
{
    Distribution d;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(x);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    // Sample variance with Bessel correction: 32/7.
    EXPECT_NEAR(d.variance(), 32.0 / 7.0, 1e-9);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(1.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    d.sample(3.0);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
    EXPECT_DOUBLE_EQ(d.min(), 3.0);
}

TEST(Format, CountSuffixes)
{
    EXPECT_EQ(formatCount(26400000), "26.4M");
    EXPECT_EQ(formatCount(422700), "422.7K");
    EXPECT_EQ(formatCount(868), "868");
    EXPECT_EQ(formatCount(0), "0");
}

TEST(Format, Percent)
{
    EXPECT_EQ(formatPercent(0.242), "24.2%");
    EXPECT_EQ(formatPercent(0.0026), "0.3%");
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    std::string s = t.str();
    EXPECT_NE(s.find("name    value"), std::string::npos);
    EXPECT_NE(s.find("a       1"), std::string::npos);
    EXPECT_NE(s.find("longer  22"), std::string::npos);
    EXPECT_NE(s.find("------  -----"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows)
{
    TextTable t;
    t.header({"a"});
    t.row({"x", "extra"});
    std::string s = t.str();
    EXPECT_NE(s.find("extra"), std::string::npos);
}

TEST(TextTable, NoHeaderNoRule)
{
    TextTable t;
    t.row({"only", "data"});
    std::string s = t.str();
    EXPECT_EQ(s.find('-'), std::string::npos);
}

TEST(LockRegistry, CreatesAndReusesClasses)
{
    LockRegistry reg;
    LockClassStats *a = reg.getClass("slock");
    LockClassStats *b = reg.getClass("slock");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a->name, "slock");
    reg.getClass("ehash.lock");
    EXPECT_EQ(reg.classes().size(), 2u);
}

TEST(LockRegistry, SnapshotAndDelta)
{
    LockRegistry reg;
    LockClassStats *a = reg.getClass("dcache_lock");
    a->contentions = 5;
    auto before = reg.snapshot();
    a->contentions = 30;
    EXPECT_EQ(reg.contentionDelta(before, "dcache_lock"), 25u);
    EXPECT_EQ(reg.contentionDelta(before, "missing"), 0u);
}

} // anonymous namespace
} // namespace fsim
