/**
 * @file
 * Unit tests for the per-core timer base (base.lock + wheel + SoftIRQ).
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "kernel/timer_base.hh"

namespace fsim
{
namespace
{

struct TimerBaseFixture : public ::testing::Test
{
    EventQueue eq;
    CacheModel cache{2, 400};
    CycleCosts costs;
    CpuModel cpu{eq, cache, costs, 2};
    LockRegistry locks;
    TimerBase base;
    Tick jiffy = ticksFromMsec(1.0);

    void
    SetUp() override
    {
        base.init(0, locks, cache, costs, cpu, jiffy);
    }
};

TEST_F(TimerBaseFixture, ArmedTimerFiresOnItsCore)
{
    TimerWheel::TimerId id;
    CoreId fired_on = kInvalidCore;
    Tick fired_at = 0;
    base.arm(0, 0, 5, [&](CoreId c, Tick t) {
        fired_on = c;
        fired_at = t;
        return t + 100;
    }, &id);
    EXPECT_NE(id, TimerWheel::kInvalidTimer);
    eq.runAll();
    EXPECT_EQ(fired_on, 0);
    EXPECT_GE(fired_at, 5 * jiffy);
}

TEST_F(TimerBaseFixture, CancelStopsFiring)
{
    TimerWheel::TimerId id;
    bool fired = false;
    base.arm(0, 0, 5, [&](CoreId, Tick t) {
        fired = true;
        return t;
    }, &id);
    base.cancel(0, 100, id);
    eq.runAll();
    EXPECT_FALSE(fired);
    EXPECT_EQ(base.pending(), 0u);
}

TEST_F(TimerBaseFixture, ModPostpones)
{
    TimerWheel::TimerId id;
    Tick fired_at = 0;
    base.arm(0, 0, 3, [&](CoreId, Tick t) {
        fired_at = t;
        return t;
    }, &id);
    base.mod(0, 100, id, 10);
    eq.runAll();
    EXPECT_GE(fired_at, 10 * jiffy);
}

TEST_F(TimerBaseFixture, BaseLockChargedPerOperation)
{
    TimerWheel::TimerId id;
    base.arm(1, 0, 100, [](CoreId, Tick t) { return t; }, &id);
    base.mod(1, 1000, id, 200);
    base.cancel(1, 2000, id);
    LockClassStats *cls = locks.getClass("base.lock");
    EXPECT_EQ(cls->acquisitions, 3u);
}

TEST_F(TimerBaseFixture, TickerStopsWhenNoTimersPending)
{
    TimerWheel::TimerId id;
    base.arm(0, 0, 2, [](CoreId, Tick t) { return t; }, &id);
    eq.runAll();   // would never terminate if the ticker kept running
    EXPECT_EQ(base.pending(), 0u);
    // Re-arming restarts the ticker.
    bool fired = false;
    base.arm(0, eq.now(), 2, [&](CoreId, Tick t) {
        fired = true;
        return t;
    }, &id);
    eq.runAll();
    EXPECT_TRUE(fired);
}

TEST_F(TimerBaseFixture, CallbackWorkCountsAsCoreBusyTime)
{
    TimerWheel::TimerId id;
    base.arm(0, 0, 1, [](CoreId, Tick t) { return t + 50000; }, &id);
    eq.runAll();
    EXPECT_GE(cpu.core(0).busyTicks(), 50000u);
}

TEST_F(TimerBaseFixture, CatchesUpAfterBacklog)
{
    // Arm a timer, then wedge the core with a long task so the first
    // timer SoftIRQ runs far past several jiffy boundaries.
    TimerWheel::TimerId id;
    Tick fired_at = 0;
    base.arm(0, 0, 3, [&](CoreId, Tick t) {
        fired_at = t;
        return t;
    }, &id);
    cpu.post(0, TaskPrio::kSoftIrq,
             [this](Tick t) { return t + 10 * jiffy; });
    eq.runAll();
    EXPECT_GT(fired_at, 0u);
    // The catch-up must not require 10 more jiffies of ticking.
    EXPECT_LE(fired_at, 12 * jiffy);
}

TEST_F(TimerBaseFixture, ManyTimersSameJiffyAllFire)
{
    int fired = 0;
    for (int i = 0; i < 50; ++i) {
        TimerWheel::TimerId id;
        base.arm(0, 0, 4, [&](CoreId, Tick t) {
            ++fired;
            return t + 10;
        }, &id);
    }
    eq.runAll();
    EXPECT_EQ(fired, 50);
}

} // anonymous namespace
} // namespace fsim
