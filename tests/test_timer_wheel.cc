/**
 * @file
 * Unit tests for the cascading timer wheel, including a randomized
 * differential test against a reference implementation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/rng.hh"
#include "timerwheel/timer_wheel.hh"

namespace fsim
{
namespace
{

TEST(TimerWheel, FiresAtExpiry)
{
    TimerWheel tw;
    bool fired = false;
    tw.add(10, [&] { fired = true; });
    tw.advance(9);
    EXPECT_FALSE(fired);
    tw.advance(10);
    EXPECT_TRUE(fired);
}

TEST(TimerWheel, FiresInJiffyOrder)
{
    TimerWheel tw;
    std::vector<int> order;
    tw.add(30, [&] { order.push_back(3); });
    tw.add(10, [&] { order.push_back(1); });
    tw.add(20, [&] { order.push_back(2); });
    tw.advance(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, CancelPreventsFiring)
{
    TimerWheel tw;
    bool fired = false;
    auto id = tw.add(10, [&] { fired = true; });
    EXPECT_TRUE(tw.cancel(id));
    EXPECT_FALSE(tw.cancel(id));   // second cancel fails
    tw.advance(100);
    EXPECT_FALSE(fired);
    EXPECT_EQ(tw.pending(), 0u);
}

TEST(TimerWheel, ModifyPostpones)
{
    TimerWheel tw;
    int fires = 0;
    auto id = tw.add(10, [&] { ++fires; });
    EXPECT_TRUE(tw.modify(id, 50));
    tw.advance(40);
    EXPECT_EQ(fires, 0);
    tw.advance(50);
    EXPECT_EQ(fires, 1);
    tw.advance(200);
    EXPECT_EQ(fires, 1) << "stale slot entry must not re-fire";
}

TEST(TimerWheel, ModifyAdvances)
{
    TimerWheel tw;
    int fires = 0;
    auto id = tw.add(500, [&] { ++fires; });
    EXPECT_TRUE(tw.modify(id, 5));
    tw.advance(5);
    EXPECT_EQ(fires, 1);
    tw.advance(1000);
    EXPECT_EQ(fires, 1);
}

TEST(TimerWheel, ModifyAfterFireFails)
{
    TimerWheel tw;
    auto id = tw.add(1, [] {});
    tw.advance(2);
    EXPECT_FALSE(tw.modify(id, 10));
}

TEST(TimerWheel, PastExpiryFiresOnNextTick)
{
    TimerWheel tw;
    tw.advance(100);
    bool fired = false;
    tw.add(50, [&] { fired = true; });   // already in the past
    tw.advance(101);
    EXPECT_TRUE(fired);
}

TEST(TimerWheel, CascadesAcrossLevelBoundary)
{
    TimerWheel tw;
    bool fired = false;
    // 300 > 256 lives in tv2 and must cascade down correctly.
    tw.add(300, [&] { fired = true; });
    tw.advance(299);
    EXPECT_FALSE(fired);
    tw.advance(300);
    EXPECT_TRUE(fired);
}

TEST(TimerWheel, DeepLevels)
{
    TimerWheel tw;
    std::vector<std::uint64_t> fired_at;
    for (std::uint64_t e : {100ull, 20000ull, 2000000ull}) {
        tw.add(e, [&fired_at, &tw] {
            fired_at.push_back(tw.currentJiffy());
        });
    }
    tw.advance(2100000);
    ASSERT_EQ(fired_at.size(), 3u);
    EXPECT_EQ(fired_at[0], 100u);
    EXPECT_EQ(fired_at[1], 20000u);
    EXPECT_EQ(fired_at[2], 2000000u);
}

TEST(TimerWheel, FarFutureClampedNotLost)
{
    TimerWheel tw;
    bool fired = false;
    auto id = tw.add(1ull << 40, [&] { fired = true; });
    EXPECT_EQ(tw.pending(), 1u);
    // The expiry is clamped into the outermost level rather than
    // wrapping; it stays pending, cancellable, and never fires early.
    tw.advance(100000);
    EXPECT_FALSE(fired);
    EXPECT_EQ(tw.pending(), 1u);
    EXPECT_TRUE(tw.cancel(id));
}

TEST(TimerWheel, CallbackCanReArm)
{
    TimerWheel tw;
    int fires = 0;
    std::function<void()> cb = [&] {
        if (++fires < 3)
            tw.add(tw.currentJiffy() + 10, cb);
    };
    tw.add(10, cb);
    tw.advance(100);
    EXPECT_EQ(fires, 3);
}

TEST(TimerWheel, AdvanceReturnsFiredCount)
{
    TimerWheel tw;
    for (int i = 1; i <= 5; ++i)
        tw.add(i, [] {});
    EXPECT_EQ(tw.advance(3), 3u);
    EXPECT_EQ(tw.advance(10), 2u);
}

TEST(TimerWheel, NonZeroStartJiffy)
{
    TimerWheel tw(1000);
    bool fired = false;
    tw.add(1010, [&] { fired = true; });
    tw.advance(1010);
    EXPECT_TRUE(fired);
}

TEST(TimerWheelScale, MillionArmedTimersAllFireOnce)
{
    // bench_million_conn arms one keepalive timer per parked connection:
    // over a million entries spread across every wheel level, cascading
    // down as time passes. Each must fire exactly once, and the cascade
    // machinery must actually engage.
    constexpr std::uint64_t kTimers = 1'200'000;
    constexpr std::uint64_t kHorizon = 600'000;
    TimerWheel tw;
    std::uint64_t fires = 0;
    for (std::uint64_t i = 0; i < kTimers; ++i) {
        // Deterministic spread over the horizon, dense near the start
        // (tv1) and sparse at the deep levels.
        std::uint64_t expiry = 1 + (i * 2654435761u) % kHorizon;
        tw.add(expiry, [&fires] { ++fires; });
    }
    EXPECT_EQ(tw.pending(), kTimers);
    std::uint64_t mid_fired = tw.advance(kHorizon / 2);
    EXPECT_GT(mid_fired, 0u);
    EXPECT_EQ(tw.advance(kHorizon + 1), kTimers - mid_fired);
    EXPECT_EQ(fires, kTimers);
    EXPECT_EQ(tw.pending(), 0u);
    EXPECT_EQ(tw.slotEntries(), 0u);
    EXPECT_GT(tw.cascaded(), 0u)
        << "a 600k-jiffy horizon must exercise the outer levels";
}

TEST(TimerWheelScale, CancelModifyChurnKeepsSlotMemoryBounded)
{
    // Connection teardown cancels its pending timer and every data
    // segment re-arms the idle timer: with eager O(1) removal the slot
    // vectors must track live timers exactly instead of accumulating
    // dead ids until the slot's jiffy comes around.
    TimerWheel tw;
    std::vector<TimerWheel::TimerId> ids;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 2000; ++i)
            ids.push_back(tw.add(tw.currentJiffy() + 1000 + i, [] {}));
        for (std::size_t i = 0; i < ids.size(); i += 2)
            EXPECT_TRUE(tw.cancel(ids[i]));
        for (std::size_t i = 1; i < ids.size(); i += 2)
            EXPECT_TRUE(tw.modify(ids[i],
                                  tw.currentJiffy() + 5000 + (i % 97)));
        EXPECT_EQ(tw.slotEntries(), tw.pending())
            << "cancel/modify must not leave ghost slot entries";
        tw.advance(tw.currentJiffy() + 10000);
        EXPECT_EQ(tw.pending(), 0u);
        ids.clear();
    }
}

TEST(TimerWheelScale, LongHorizonIndexOverflowIsSafe)
{
    // Slot indexing must stay correct when the jiffy counter crosses
    // 2^32 (a 32-bit index truncation would misfile or lose timers) and
    // far beyond.
    for (std::uint64_t base :
         {(1ull << 32) - 100, (1ull << 40) - 7, (1ull << 52) + 3}) {
        TimerWheel tw(base);
        std::vector<std::uint64_t> fired_at;
        for (std::uint64_t d : {1ull, 200ull, 70'000ull, 9'000'000ull})
            tw.add(base + d, [&fired_at, &tw] {
                fired_at.push_back(tw.currentJiffy());
            });
        tw.advance(base + 9'000'001);
        ASSERT_EQ(fired_at.size(), 4u) << "base=" << base;
        EXPECT_EQ(fired_at[0], base + 1);
        EXPECT_EQ(fired_at[1], base + 200);
        EXPECT_EQ(fired_at[2], base + 70'000);
        EXPECT_EQ(fired_at[3], base + 9'000'000);
        EXPECT_EQ(tw.pending(), 0u);
    }
}

/**
 * Differential property test: random add/cancel/modify sequences must
 * match a trivial map-based reference wheel, for several seeds.
 */
class TimerWheelDifferential : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TimerWheelDifferential, MatchesReference)
{
    Rng rng(GetParam());
    TimerWheel tw;
    // Reference: expiry per live logical timer.
    std::map<std::uint64_t, std::uint64_t> ref;   // our key -> expiry
    std::map<TimerWheel::TimerId, std::uint64_t> idmap;
    std::vector<std::uint64_t> fired;
    std::uint64_t next_key = 1;
    std::uint64_t now = 0;

    for (int step = 0; step < 2000; ++step) {
        int op = static_cast<int>(rng.range(10));
        if (op < 5) {
            std::uint64_t expires = now + 1 + rng.range(2000);
            std::uint64_t key = next_key++;
            auto id = tw.add(expires, [&fired, key] {
                fired.push_back(key);
            });
            ref[key] = expires;
            idmap[id] = key;
        } else if (op < 7 && !idmap.empty()) {
            auto it = idmap.begin();
            std::advance(it, rng.range(idmap.size()));
            if (tw.cancel(it->first))
                ref.erase(it->second);
            idmap.erase(it);
        } else if (op < 8 && !idmap.empty()) {
            auto it = idmap.begin();
            std::advance(it, rng.range(idmap.size()));
            std::uint64_t expires = now + 1 + rng.range(2000);
            if (tw.modify(it->first, expires))
                ref[it->second] = expires;
        } else {
            std::uint64_t to = now + rng.range(300);
            tw.advance(to);
            now = to;
            // Everything expired by `now` must have fired.
            for (auto it = ref.begin(); it != ref.end();) {
                if (it->second <= now) {
                    EXPECT_NE(std::find(fired.begin(), fired.end(),
                                        it->first),
                              fired.end())
                        << "timer " << it->first << " lost";
                    it = ref.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }
    tw.advance(now + 5000);
    EXPECT_EQ(tw.pending(), 0u);
    // No timer fires twice.
    std::vector<std::uint64_t> sorted = fired;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimerWheelDifferential,
                         ::testing::Values(1, 7, 42, 9001));

} // anonymous namespace
} // namespace fsim
