/**
 * @file
 * Tests for the trace subsystem: ring overflow semantics, phase
 * attribution arithmetic, the cycle-conservation invariant against the
 * CPU model, and the versioned bench JSON schema.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "harness/bench_json.hh"
#include "harness/experiment.hh"
#include "trace/phase_accounting.hh"
#include "trace/trace_report.hh"
#include "trace/trace_ring.hh"
#include "trace/trace_scope.hh"
#include "trace/tracer.hh"

namespace fsim
{
namespace
{

TraceEvent
ev(Tick tick, TraceEventType type = TraceEventType::kSyscallEnter)
{
    TraceEvent e;
    e.tick = tick;
    e.type = type;
    return e;
}

TEST(TraceRing, FillsBelowCapacityInOrder)
{
    TraceRing ring(8);
    for (Tick t = 0; t < 3; ++t)
        ring.push(ev(t));
    EXPECT_EQ(ring.capacity(), 8u);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.pushed(), 3u);
    EXPECT_EQ(ring.overwritten(), 0u);
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i).tick, static_cast<Tick>(i));
}

TEST(TraceRing, OverwritesOldestWhenFull)
{
    TraceRing ring(4);
    for (Tick t = 0; t < 10; ++t)
        ring.push(ev(t));
    // ftrace overwrite mode: the newest window survives.
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushed(), 10u);
    EXPECT_EQ(ring.overwritten(), 6u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i).tick, static_cast<Tick>(6 + i));

    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.overwritten(), 0u);
}

/** Folded map keyed by decoded stack string, for readable asserts. */
std::map<std::string, std::uint64_t>
decodedFolded(const PhaseSnapshot &s)
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &kv : s.folded)
        out[decodeFoldedKey(kv.first)] += kv.second;
    return out;
}

TEST(PhaseAccounting, NestedFramesAndChargesSumToSpan)
{
    PhaseAccounting pa(1);
    pa.push(0, Phase::kApp, 0);
    pa.charge(0, Phase::kLockSpin, 10);
    pa.push(0, Phase::kSyscall, 100);
    pa.charge(0, Phase::kCacheStall, 5);
    pa.pop(0, 150);   // syscall frame: span 50, self 45
    pa.pop(0, 200);   // app frame: span 200, children 10 + 50, self 140
    EXPECT_EQ(pa.depth(0), 0);

    PhaseSnapshot s = pa.snapshot();
    auto &c = s.perCore.at(0);
    EXPECT_EQ(c[static_cast<int>(Phase::kApp)], 140u);
    EXPECT_EQ(c[static_cast<int>(Phase::kSyscall)], 45u);
    EXPECT_EQ(c[static_cast<int>(Phase::kLockSpin)], 10u);
    EXPECT_EQ(c[static_cast<int>(Phase::kCacheStall)], 5u);

    // Attribution is conservative: charges partition the outer span.
    std::uint64_t sum = 0;
    for (int p = 0; p < kNumChargedPhases; ++p)
        sum += c[p];
    EXPECT_EQ(sum, 200u);

    auto folded = decodedFolded(s);
    EXPECT_EQ(folded["app"], 140u);
    EXPECT_EQ(folded["app;lock-spin"], 10u);
    EXPECT_EQ(folded["app;syscall"], 45u);
    EXPECT_EQ(folded["app;syscall;cache-stall"], 5u);
    EXPECT_EQ(s.untracked, 0u);
}

TEST(PhaseAccounting, ChargeOutsideAnyFrameIsUntracked)
{
    PhaseAccounting pa(2);
    pa.charge(1, Phase::kLockSpin, 42);
    PhaseSnapshot s = pa.snapshot();
    EXPECT_EQ(s.untracked, 42u);
    for (const auto &core : s.perCore)
        for (std::uint64_t v : core)
            EXPECT_EQ(v, 0u);
    EXPECT_TRUE(s.folded.empty());
}

TEST(PhaseAccounting, DeltaSubtractsAndSaturates)
{
    PhaseAccounting pa(1);
    pa.push(0, Phase::kApp, 0);
    pa.pop(0, 100);
    PhaseSnapshot before = pa.snapshot();
    pa.push(0, Phase::kApp, 100);
    pa.charge(0, Phase::kLockSpin, 30);
    pa.pop(0, 200);
    PhaseSnapshot d = phaseDelta(before, pa.snapshot());
    EXPECT_EQ(d.perCore[0][static_cast<int>(Phase::kApp)], 70u);
    EXPECT_EQ(d.perCore[0][static_cast<int>(Phase::kLockSpin)], 30u);
    // Window totals: exactly the 100 ticks of the second frame.
    EXPECT_EQ(decodedFolded(d)["app"], 70u);
}

TEST(TraceScope, UnclosedScopeAttributesZeroSelfTime)
{
    Tracer tr(1, 16);
    {
        TraceScope outer(&tr, 0, Phase::kApp, 0);
        {
            TraceScope sc(&tr, 0, Phase::kSyscall, 10);
            tr.chargePhase(0, Phase::kLockSpin, 7);
            // No close(): an early-return path. The destructor pops
            // with zero self time but keeps the nested charge.
        }
        outer.close(100);
    }
    PhaseSnapshot s = tr.phaseSnapshot();
    EXPECT_EQ(s.perCore[0][static_cast<int>(Phase::kSyscall)], 0u);
    EXPECT_EQ(s.perCore[0][static_cast<int>(Phase::kLockSpin)], 7u);
    EXPECT_EQ(s.perCore[0][static_cast<int>(Phase::kApp)], 93u);
    EXPECT_EQ(tr.phases().depth(0), 0);
}

TEST(Tracer, NoteLockSpinEmitsEventPairAndCharges)
{
    Tracer tr(1, 16);
    tr.pushPhase(0, Phase::kSoftirq, 0);
    tr.noteLockSpin(0, 50, 25, 3);
    tr.noteLockSpin(0, 80, 0, 3);   // zero spin: no events, no charge
    tr.popPhase(0, 200);

    const TraceRing &ring = tr.ring(0);
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.at(0).type, TraceEventType::kLockSpinBegin);
    EXPECT_EQ(ring.at(0).tick, 50u);
    EXPECT_EQ(ring.at(0).arg, 25u);
    EXPECT_EQ(ring.at(0).id, 3u);
    EXPECT_EQ(ring.at(1).type, TraceEventType::kLockSpinEnd);
    EXPECT_EQ(ring.at(1).tick, 75u);

    PhaseSnapshot s = tr.phaseSnapshot();
    EXPECT_EQ(s.perCore[0][static_cast<int>(Phase::kLockSpin)], 25u);
    EXPECT_EQ(s.perCore[0][static_cast<int>(Phase::kSoftirq)], 175u);
}

TEST(Tracer, DisabledTracerRecordsNothing)
{
    Tracer tr(2, 16);
    tr.setEnabled(false);
    tr.emit(0, TraceEventType::kConnEstablished, 10);
    tr.pushPhase(1, Phase::kApp, 0);
    tr.chargePhase(1, Phase::kLockSpin, 5);
    tr.noteLockSpin(1, 10, 9, 0);
    tr.popPhase(1, 100);
    EXPECT_EQ(tr.eventsRecorded(), 0u);
    PhaseSnapshot s = tr.phaseSnapshot();
    for (const auto &core : s.perCore)
        for (std::uint64_t v : core)
            EXPECT_EQ(v, 0u);
    EXPECT_EQ(s.untracked, 0u);
}

/** Small-but-real experiment config used by the integration tests. */
ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.machine.cores = 4;
    cfg.concurrencyPerCore = 40;
    cfg.warmupSec = 0.005;
    cfg.measureSec = 0.01;
    return cfg;
}

TEST(PhaseAttribution, ChargedCyclesEqualMeasuredBusyTicks)
{
    // The conservation invariant: every busy cycle the CPU model
    // measures is attributed to exactly one phase, because runNext
    // wraps every task in a root frame and nested charges are contained
    // in their enclosing frame's span.
    Testbed bed(smallConfig());
    bed.run();

    Machine &m = bed.machine();
    PhaseSnapshot s = m.tracer().phaseSnapshot();
    std::uint64_t attributed = 0;
    for (const auto &core : s.perCore)
        for (std::uint64_t v : core)
            attributed += v;
    EXPECT_EQ(attributed, m.cpu().totalBusyTicks());
    for (int c = 0; c < m.tracer().numCores(); ++c)
        EXPECT_EQ(m.tracer().phases().depth(c), 0);
}

TEST(PhaseAttribution, BreakdownFractionsSumToOne)
{
    Testbed bed(smallConfig());
    ExperimentResult r = bed.run();
    ASSERT_EQ(static_cast<int>(r.phases.fractions.size()), 4);
    for (const auto &core : r.phases.fractions) {
        double sum = 0;
        for (double f : core) {
            EXPECT_GE(f, 0.0);
            sum += f;
        }
        EXPECT_NEAR(sum, 1.0, 1e-6);
    }
    // A loaded run attributes real work, not just idle.
    EXPECT_GT(r.phases.total(Phase::kApp), 0.0);
    EXPECT_GT(r.phases.total(Phase::kSyscall), 0.0);
    EXPECT_GT(r.traceEventsRecorded, 0u);
}

TEST(QueueTimelines, AcceptQueueDepthsAreRecovered)
{
    Testbed bed(smallConfig());
    ExperimentResult r = bed.run();
    // The default kernel funnels everything through the shared queue.
    auto it = r.queueTimelines.find("accept-shared");
    ASSERT_NE(it, r.queueTimelines.end());
    ASSERT_FALSE(it->second.empty());
    Tick prev = 0;
    for (const QueueSample &qs : it->second) {
        EXPECT_GE(qs.tick, prev);
        prev = qs.tick;
        EXPECT_EQ(qs.queue, TraceQueueId::kAcceptShared);
    }
}

TEST(BenchJson, DocumentCarriesSchemaVersionAndRequiredKeys)
{
    ExperimentConfig cfg = smallConfig();
    cfg.statWindows = 2;
    Testbed bed(cfg);
    ExperimentResult r = bed.run();

    BenchJsonReport report("unit_test");
    report.addRow("row-0", cfg, r);
    EXPECT_EQ(report.rowCount(), 1u);

    std::string doc = report.str();
    // Golden schema: version stamp plus every top-level and per-row key
    // the downstream validator requires.
    EXPECT_NE(doc.find("\"schema_version\":10"), std::string::npos);
    EXPECT_NE(doc.find("\"bench\":\"unit_test\""), std::string::npos);
    for (const char *key :
         {"\"rows\"", "\"label\"", "\"config\"", "\"metrics\"",
          "\"cps\"", "\"phases\"", "\"per_core\"", "\"folded_stacks\"",
          "\"locks\"", "\"lock_windows\"", "\"queue_timelines\"",
          "\"trace\"", "\"events_recorded\"", "\"window_span\"",
          "\"fingerprint\"", "\"invariants\"", "\"checks_run\"",
          "\"violations\"", "\"failed\""})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    // v2: fingerprints render as fixed-width hex strings.
    EXPECT_NE(doc.find("\"fingerprint\":\"0x"), std::string::npos);
    // v3: per-row faults block (disarmed here) and per-window goodput
    // plus SYN-counter deltas.
    for (const char *key :
         {"\"faults\"", "\"plan\":\"\"", "\"armed\":false",
          "\"syn_cookies\":false", "\"completed\"", "\"goodput\"",
          "\"syn_retransmits\"", "\"syn_cookies_sent\"",
          "\"syn_cookies_validated\"", "\"accept_queue_rsts\""})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    // v4: per-row overload block (disarmed here, so counters are zero
    // but every key must still be present for the validator).
    for (const char *key :
         {"\"overload\"", "\"enabled\":false", "\"spec\":\"\"",
          "\"offered\"", "\"admitted\"", "\"degraded\"", "\"shed\"",
          "\"shed_deadline\"", "\"shed_worker_cap\"",
          "\"shed_pressure\"", "\"released\"", "\"inflight\"",
          "\"served_degraded\"", "\"backlog_dropped\"",
          "\"syn_gate_dropped\"", "\"pressure_transitions\"",
          "\"pressure_level\"", "\"pressure_peak\"",
          "\"softirq_depth_peak\"", "\"accept_depth_peak\"",
          "\"health_probes_started\"", "\"health_probes_completed\"",
          "\"health_probes_failed\"", "\"latency_p99_ticks\""})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    // v6: per-row conn block (arena footprint, TIME_WAIT lifecycle,
    // port pressure, ehash lookup cost, ramp checkpoints).
    for (const char *key :
         {"\"conn\"", "\"tcb_live\"", "\"tcb_live_peak\"",
          "\"tcb_created\"", "\"slab_bytes\"", "\"bytes_per_conn\"",
          "\"established_curr\"", "\"established_peak\"",
          "\"time_wait_curr\"", "\"time_wait_peak\"",
          "\"time_wait_entered\"", "\"time_wait_reaped\"",
          "\"time_wait_recycled\"", "\"time_wait_syn_dropped\"",
          "\"time_wait_acks\"", "\"port_alloc_failures\"",
          "\"ehash_lookups\"", "\"ehash_probes_walked\"",
          "\"ehash_lookup_cycles\"", "\"ehash_resizes\"",
          "\"avg_probe_len\"", "\"cycles_per_lookup\"", "\"ramp\""})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    // v7: per-row sim_core block (DES-core throughput counters; the
    // wall-clock trio only appears on wall-stamped rows, not here).
    for (const char *key :
         {"\"sim_core\"", "\"events_run\"", "\"events_scheduled\"",
          "\"sim_ticks\""})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    EXPECT_EQ(doc.find("\"wall_seconds\""), std::string::npos);
    // v10: timeseries + fleet_trace blocks are present on every row
    // (disabled and empty on single-machine rows like this one).
    for (const char *key :
         {"\"timeseries\"", "\"sample_period\"", "\"series\"",
          "\"fleet_trace\"", "\"hops\""})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    // Window deltas: events scheduled during warmup may run inside the
    // window, so run and scheduled need not be ordered — both just have
    // to show the window did real work.
    EXPECT_GT(r.simEventsRun, 0u);
    EXPECT_GT(r.simEventsScheduled, 0u);
    // The short-lived run actively closed connections, so the census
    // must show TIME_WAIT traffic and a non-zero per-conn footprint.
    EXPECT_GT(r.conn.tcbLivePeak, 0u);
    EXPECT_GT(r.conn.bytesPerConn, 0.0);
    EXPECT_GT(r.conn.timeWaitEntered, 0u);
    EXPECT_GT(r.conn.ehashLookups, 0u);
    // statWindows=2 produced two per-window lock-stat deltas.
    EXPECT_EQ(r.lockWindows.size(), 2u);
}

} // namespace
} // namespace fsim
