/**
 * @file
 * Multi-machine integration: a proxy machine and a real backend machine
 * composed on one wire. Checks end-to-end service, conservation, and
 * that Fastsocket's invariants hold on *both* tiers simultaneously.
 */

#include <gtest/gtest.h>

#include "app/http_load.hh"
#include "app/proxy.hh"
#include "app/web_server.hh"
#include "harness/experiment.hh"

namespace fsim
{
namespace
{

struct TwoTier
{
    EventQueue eq;
    Wire wire{eq, ticksFromUsec(50)};
    std::unique_ptr<Machine> backendM;
    std::unique_ptr<Machine> proxyM;
    std::unique_ptr<WebServer> web;
    std::unique_ptr<Proxy> proxy;
    std::unique_ptr<HttpLoad> load;

    explicit TwoTier(const KernelConfig &kernel, int cores = 2)
    {
        MachineConfig bc;
        bc.cores = cores;
        bc.kernel = kernel;
        bc.baseAddr = 0x0a090001;
        bc.seed = 11;
        backendM = std::make_unique<Machine>(eq, wire, bc);
        web = std::make_unique<WebServer>(*backendM, 64);
        web->start();

        MachineConfig pc;
        pc.cores = cores;
        pc.kernel = kernel;
        pc.seed = 12;
        proxyM = std::make_unique<Machine>(eq, wire, pc);
        proxy = std::make_unique<Proxy>(*proxyM, backendM->addrs(),
                                        backendM->servicePort(), 64);
        proxy->start();

        HttpLoad::Config lc;
        lc.serverAddrs = proxyM->addrs();
        lc.concurrency = 40 * cores;
        load = std::make_unique<HttpLoad>(eq, wire, lc);
    }
};

TEST(TwoTier, EndToEndServiceThroughBothMachines)
{
    TwoTier t(KernelConfig::fastsocket());
    t.load->start();
    t.eq.runUntil(ticksFromSeconds(0.05));

    EXPECT_GT(t.load->completed(), 300u);
    EXPECT_EQ(t.load->failed(), 0u);
    EXPECT_GT(t.web->served(), 300u);
    EXPECT_GT(t.proxy->served(), 300u);
    // Every client completion went through both tiers.
    EXPECT_GE(t.web->served() + 50, t.proxy->served());
    EXPECT_EQ(t.load->started(),
              t.load->completed() + t.load->failed() +
                  t.load->inFlight());
}

TEST(TwoTier, FastsocketInvariantsHoldOnBothTiers)
{
    TwoTier t(KernelConfig::fastsocket(), 4);
    t.load->start();
    t.eq.runUntil(ticksFromSeconds(0.04));
    ASSERT_GT(t.load->completed(), 200u);

    for (Machine *m : {t.proxyM.get(), t.backendM.get()}) {
        for (const auto &cls : m->locks().classes())
            EXPECT_EQ(cls->contentions, 0u)
                << cls->name << " contended";
        for (const Socket *s : m->kernel().allSockets()) {
            if (s->kind == SockKind::kConnection) {
                EXPECT_LE(s->touchedCount(), 1);
            }
        }
    }
}

TEST(TwoTier, BaselineWorksJustSlower)
{
    TwoTier base(KernelConfig::base2632());
    base.load->start();
    base.eq.runUntil(ticksFromSeconds(0.05));
    EXPECT_GT(base.load->completed(), 100u);
    EXPECT_EQ(base.load->failed(), 0u);

    TwoTier fast(KernelConfig::fastsocket());
    fast.load->start();
    fast.eq.runUntil(ticksFromSeconds(0.05));
    EXPECT_GT(fast.load->completed(), base.load->completed());
}

} // anonymous namespace
} // namespace fsim
