/**
 * @file
 * Unit tests for the three VFS flavors (2.6.32 global locks, 3.13
 * fine-grained, Fastsocket-aware fast path).
 */

#include <gtest/gtest.h>

#include "cpu/cache_model.hh"
#include "vfs/vfs.hh"

namespace fsim
{
namespace
{

struct VfsFixture
{
    LockRegistry locks;
    CacheModel cache{4, 400};
    CycleCosts costs;
};

TEST(Vfs, GlobalModeChargesGlobalLocks)
{
    VfsFixture f;
    VfsLayer vfs(VfsMode::kGlobalLocks, f.locks, f.cache, f.costs);
    SocketFile *file = nullptr;
    Tick t = vfs.allocSocketFile(0, 0, nullptr, &file);
    EXPECT_GT(t, f.costs.vfsAllocHeavy);
    EXPECT_EQ(f.locks.getClass("dcache_lock")->acquisitions, 1u);
    EXPECT_EQ(f.locks.getClass("inode_lock")->acquisitions, 1u);
    t = vfs.freeSocketFile(0, t, file);
    EXPECT_EQ(f.locks.getClass("dcache_lock")->acquisitions, 2u);
    EXPECT_EQ(f.locks.getClass("inode_lock")->acquisitions, 2u);
}

TEST(Vfs, FastsocketModeSkipsDentryInodeLocks)
{
    VfsFixture f;
    VfsLayer vfs(VfsMode::kFastsocket, f.locks, f.cache, f.costs);
    SocketFile *file = nullptr;
    Tick t = vfs.allocSocketFile(0, 0, nullptr, &file);
    EXPECT_TRUE(file->fastPath);
    vfs.freeSocketFile(0, t, file);
    EXPECT_EQ(f.locks.getClass("dcache_lock")->acquisitions, 0u);
    EXPECT_EQ(f.locks.getClass("inode_lock")->acquisitions, 0u);
}

TEST(Vfs, FastPathIsCheaper)
{
    VfsFixture f;
    VfsLayer heavy(VfsMode::kGlobalLocks, f.locks, f.cache, f.costs);
    VfsLayer fast(VfsMode::kFastsocket, f.locks, f.cache, f.costs);
    SocketFile *hf = nullptr;
    SocketFile *ff = nullptr;
    Tick th = heavy.allocSocketFile(0, 0, nullptr, &hf);
    Tick tf = fast.allocSocketFile(0, 0, nullptr, &ff);
    EXPECT_LT(tf, th);
    EXPECT_LT(fast.freeSocketFile(0, 0, ff) ,
              heavy.freeSocketFile(0, 0, hf));
}

TEST(Vfs, FineGrainedUsesSameClassesButBucketLocks)
{
    VfsFixture f;
    VfsLayer vfs(VfsMode::kFineGrained, f.locks, f.cache, f.costs, 8);
    SocketFile *file = nullptr;
    for (int i = 0; i < 16; ++i)
        vfs.allocSocketFile(0, 0, nullptr, &file);
    EXPECT_EQ(f.locks.getClass("dcache_lock")->acquisitions, 16u);
}

TEST(Vfs, ProcWalkSeesSocketsInEveryMode)
{
    for (VfsMode mode : {VfsMode::kGlobalLocks, VfsMode::kFineGrained,
                         VfsMode::kFastsocket}) {
        VfsFixture f;
        VfsLayer vfs(mode, f.locks, f.cache, f.costs);
        int marker = 7;
        SocketFile *a = nullptr;
        SocketFile *b = nullptr;
        vfs.allocSocketFile(0, 0, &marker, &a);
        vfs.allocSocketFile(1, 0, nullptr, &b);
        auto walk = vfs.procWalk();
        // netstat/lsof compatibility (paper 3.4): every socket visible,
        // fast path included.
        EXPECT_EQ(walk.size(), 2u);
        bool found = false;
        for (const SocketFile *sf : walk)
            if (sf->priv == &marker)
                found = true;
        EXPECT_TRUE(found);
        vfs.freeSocketFile(0, 0, a);
        EXPECT_EQ(vfs.procWalk().size(), 1u);
    }
}

TEST(Vfs, LiveFilesTracksPopulation)
{
    VfsFixture f;
    VfsLayer vfs(VfsMode::kFastsocket, f.locks, f.cache, f.costs);
    SocketFile *files[10];
    for (auto &file : files)
        vfs.allocSocketFile(0, 0, nullptr, &file);
    EXPECT_EQ(vfs.liveFiles(), 10u);
    EXPECT_EQ(vfs.totalAllocs(), 10u);
    for (auto *file : files)
        vfs.freeSocketFile(0, 0, file);
    EXPECT_EQ(vfs.liveFiles(), 0u);
    EXPECT_EQ(vfs.totalAllocs(), 10u);
}

TEST(Vfs, InodeNumbersUnique)
{
    VfsFixture f;
    VfsLayer vfs(VfsMode::kGlobalLocks, f.locks, f.cache, f.costs);
    SocketFile *a = nullptr;
    SocketFile *b = nullptr;
    vfs.allocSocketFile(0, 0, nullptr, &a);
    vfs.allocSocketFile(0, 0, nullptr, &b);
    EXPECT_NE(a->ino, b->ino);
}

TEST(VfsDeath, DoubleFreePanics)
{
    VfsFixture f;
    VfsLayer vfs(VfsMode::kFastsocket, f.locks, f.cache, f.costs);
    SocketFile *file = nullptr;
    vfs.allocSocketFile(0, 0, nullptr, &file);
    vfs.freeSocketFile(0, 0, file);
    // The slab slot outlives the file, so the double free reads a
    // dead slot deterministically rather than freed memory.
    EXPECT_DEATH(vfs.freeSocketFile(0, 0, file), "double free");
}

/** Property: cross-core alloc/free churn keeps tables consistent. */
class VfsChurn : public ::testing::TestWithParam<VfsMode>
{
};

TEST_P(VfsChurn, BalancedChurnLeavesNothing)
{
    VfsFixture f;
    VfsLayer vfs(GetParam(), f.locks, f.cache, f.costs);
    std::vector<SocketFile *> live;
    Tick t = 0;
    for (int i = 0; i < 500; ++i) {
        SocketFile *file = nullptr;
        t = vfs.allocSocketFile(i % 4, t, nullptr, &file);
        live.push_back(file);
        if (live.size() > 32) {
            t = vfs.freeSocketFile((i + 1) % 4, t, live.front());
            live.erase(live.begin());
        }
    }
    for (SocketFile *file : live)
        t = vfs.freeSocketFile(0, t, file);
    EXPECT_EQ(vfs.liveFiles(), 0u);
    EXPECT_EQ(vfs.totalAllocs(), 500u);
}

INSTANTIATE_TEST_SUITE_P(Modes, VfsChurn,
                         ::testing::Values(VfsMode::kGlobalLocks,
                                           VfsMode::kFineGrained,
                                           VfsMode::kFastsocket));

} // anonymous namespace
} // namespace fsim
