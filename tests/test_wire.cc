/**
 * @file
 * Unit tests for the latency-only wire fabric.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/wire.hh"

namespace fsim
{
namespace
{

TEST(Wire, DeliversAfterDelay)
{
    EventQueue eq;
    Wire wire(eq, 500);
    Tick arrived = 0;
    wire.attach(42, [&](const Packet &) { arrived = eq.now(); });
    Packet p;
    p.tuple.daddr = 42;
    wire.transmit(p, 100);
    eq.runAll();
    EXPECT_EQ(arrived, 600u);
    EXPECT_EQ(wire.delivered(), 1u);
}

TEST(Wire, RoutesByDestination)
{
    EventQueue eq;
    Wire wire(eq, 10);
    int a = 0, b = 0;
    wire.attach(1, [&](const Packet &) { ++a; });
    wire.attach(2, [&](const Packet &) { ++b; });
    Packet p;
    p.tuple.daddr = 2;
    wire.transmit(p, 0);
    p.tuple.daddr = 1;
    wire.transmit(p, 0);
    wire.transmit(p, 0);
    eq.runAll();
    EXPECT_EQ(a, 2);
    EXPECT_EQ(b, 1);
}

TEST(Wire, RangeEndpointCatchesWholeBlock)
{
    EventQueue eq;
    Wire wire(eq, 10);
    std::vector<IpAddr> seen;
    wire.attachRange(100, 199,
                     [&](const Packet &p) { seen.push_back(p.tuple.daddr); });
    for (IpAddr d : {100u, 150u, 199u}) {
        Packet p;
        p.tuple.daddr = d;
        wire.transmit(p, 0);
    }
    eq.runAll();
    EXPECT_EQ(seen, (std::vector<IpAddr>{100, 150, 199}));
}

TEST(Wire, ExactBeatsRange)
{
    EventQueue eq;
    Wire wire(eq, 10);
    int exact = 0, range = 0;
    wire.attachRange(0, 1000, [&](const Packet &) { ++range; });
    wire.attach(5, [&](const Packet &) { ++exact; });
    Packet p;
    p.tuple.daddr = 5;
    wire.transmit(p, 0);
    eq.runAll();
    EXPECT_EQ(exact, 1);
    EXPECT_EQ(range, 0);
}

TEST(Wire, UnknownDestinationDropped)
{
    EventQueue eq;
    Wire wire(eq, 10);
    Packet p;
    p.tuple.daddr = 9999;
    wire.transmit(p, 0);
    eq.runAll();
    EXPECT_EQ(wire.dropped(), 1u);
    EXPECT_EQ(wire.delivered(), 0u);
}

TEST(Wire, InOrderDeliveryForEqualSendTimes)
{
    EventQueue eq;
    Wire wire(eq, 10);
    std::vector<std::uint64_t> ids;
    wire.attach(1, [&](const Packet &p) { ids.push_back(p.connId); });
    for (std::uint64_t i = 0; i < 5; ++i) {
        Packet p;
        p.tuple.daddr = 1;
        p.connId = i;
        wire.transmit(p, 0);
    }
    eq.runAll();
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Wire, PayloadAndFlagsSurviveTransit)
{
    EventQueue eq;
    Wire wire(eq, 10);
    Packet got;
    wire.attach(1, [&](const Packet &p) { got = p; });
    Packet p;
    p.tuple = FiveTuple{7, 1, 1234, 80};
    p.flags = kSyn | kAck;
    p.payload = 600;
    wire.transmit(p, 0);
    eq.runAll();
    EXPECT_EQ(got.tuple, p.tuple);
    EXPECT_EQ(got.flags, p.flags);
    EXPECT_EQ(got.payload, 600u);
}

} // anonymous namespace
} // namespace fsim
