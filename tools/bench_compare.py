#!/usr/bin/env python3
"""Diff two bench --json exports and flag regressions.

Usage: bench_compare.py <baseline.json> <candidate.json>
           [--threshold=0.05] [--metrics=cps,rps]

Rows are matched by label (rows present in only one document are
reported but are not regressions). For each matched row the selected
metrics are compared against the baseline:

  - throughput metrics (cps, rps, served): higher is better; a drop of
    more than the noise threshold is a regression
  - overload latency percentiles (latency_p50_ticks, latency_p99_ticks,
    compared only when both rows have latency samples): lower is
    better; a rise of more than the threshold is a regression
  - memory cost per connection (bytes_per_conn from the v6 conn block,
    compared only when both rows held TCBs): lower is better; per-TCB
    bloat gates exactly like a latency regression
  - DES-core throughput (events_per_sec, wall_per_sim_sec from the v7
    sim_core block, compared only when both rows are wall-stamped):
    events_per_sec higher is better, wall_per_sim_sec lower is better
  - fleet health (request_success_ratio higher is better,
    flows_active_peak lower is better, from the v8 fleet block;
    compared only on rows where the fleet tier is enabled)
  - incident response (mttd_ms_mean / mttr_ms_mean from the v9 fleet
    block, compared only when both rows detected / recovered at least
    one incident): lower is better
  - burn-alert reaction time (slo_first_fast_alert_ms from the v10
    fleet block, compared only when both rows fired at least one fast
    alert): lower is better
  - sampled time series (v10 "timeseries" block) by name: pass
    --metrics=ts:<series> (higher is better) or ts-:<series> (lower is
    better) to compare the final sampled value of that series, e.g.
    --metrics=ts-:m0.time_wait. A series the baseline sampled but the
    candidate does not is an explicit MISSING regression.

Sign convention: the percentage in every REGRESSION / IMPROVED line is
the magnitude of the move measured against the metric's gate, and the
message names the gate direction ("lower is better" / "higher is
better") — so "12.0% worse; lower is better" always means the value
rose, and a reader never has to remember which way a metric gates.

A metric that is present (or comparable) in the baseline but absent or
gated out of the candidate is reported as an explicit MISSING
regression — never silently skipped: a latency percentile that
disappears because the candidate stopped sampling is a data loss, not
a pass. A non-finite value (NaN/inf) inside a present block is treated
the same way: NaN compares false against every threshold, so without
this rule a corrupted candidate metric would silently pass. The
reverse direction (new in candidate) is reported as a note. Metrics
absent from both sides are skipped.

Improvements beyond the threshold are reported as such, never fatal.
Accepts any schema version from v2 on (the compared keys exist in all
of them). Exit status: 0 = no regressions, 1 = at least one regression,
2 = usage/IO error.
"""

import json
import math
import sys

DEFAULT_THRESHOLD = 0.05
HIGHER_BETTER = ("cps", "rps", "served", "events_per_sec",
                 "request_success_ratio")
LOWER_BETTER = ("latency_p50_ticks", "latency_p99_ticks",
                "bytes_per_conn", "wall_per_sim_sec",
                "flows_active_peak", "mttd_ms_mean", "mttr_ms_mean",
                "slo_first_fast_alert_ms")
MIN_SCHEMA = 2


def is_lower_better(name):
    return name in LOWER_BETTER or name.startswith("ts-:")


def as_float(v):
    """Numeric AND finite, else None. NaN/inf inside a present block
    must not reach the threshold comparison (every comparison against
    NaN is False, which would silently pass); mapping it to None turns
    it into an explicit MISSING regression instead."""
    if isinstance(v, (int, float)) and math.isfinite(v):
        return float(v)
    return None


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        return None
    version = doc.get("schema_version")
    if not isinstance(version, int) or version < MIN_SCHEMA:
        print(f"error: {path}: unsupported schema_version {version!r}",
              file=sys.stderr)
        return None
    if not isinstance(doc.get("rows"), list):
        print(f"error: {path}: missing rows", file=sys.stderr)
        return None
    return doc


def metric_value(row, name):
    """Fetch a metric by name; None when absent or not comparable."""
    if name.startswith("ts:") or name.startswith("ts-:"):
        # v10 timeseries: final sampled value of the named series.
        ts = row.get("timeseries", {})
        if not ts.get("enabled"):
            return None
        want = name.split(":", 1)[1]
        for se in ts.get("series", []):
            if se.get("name") == want and se.get("points"):
                return as_float(se["points"][-1][1])
        return None
    if name == "slo_first_fast_alert_ms":
        # v10 SLO: reaction time exists only once a fast alert fired.
        fl = row.get("fleet", {})
        if not fl.get("enabled") or not fl.get("slo_fast_alerts"):
            return None
        return as_float(fl.get(name))
    if name in ("events_per_sec", "wall_per_sim_sec"):
        # v7 sim_core: only wall-stamped rows carry these, so unstamped
        # baselines/candidates simply skip the comparison.
        return as_float(row.get("sim_core", {}).get(name))
    if name in ("request_success_ratio", "flows_active_peak"):
        # v8 fleet: meaningful only on rows with the fleet tier up.
        fl = row.get("fleet", {})
        if not fl.get("enabled"):
            return None
        return as_float(fl.get(name))
    if name in ("mttd_ms_mean", "mttr_ms_mean"):
        # v9 incidents: a mean over zero incidents is not a datum.
        fl = row.get("fleet", {})
        if not fl.get("enabled"):
            return None
        gate = ("incidents_detected" if name == "mttd_ms_mean"
                else "incidents_recovered")
        if not fl.get(gate):
            return None
        return as_float(fl.get(name))
    if name in HIGHER_BETTER:
        return as_float(row.get("metrics", {}).get(name))
    if name == "bytes_per_conn":
        cn = row.get("conn", {})
        if not cn.get("tcb_live_peak"):
            return None     # no TCBs ever -> per-conn cost undefined
        return as_float(cn.get(name))
    if name in LOWER_BETTER:
        ov = row.get("overload", {})
        if not ov.get("latency_samples"):
            return None     # no samples -> percentile is meaningless
        return as_float(ov.get(name))
    return None


def compare_rows(label, base, cand, metrics, threshold):
    """Return (regressions, improvements) message lists for one row."""
    regressions = []
    improvements = []
    for m in metrics:
        bv = metric_value(base, m)
        cv = metric_value(cand, m)
        if bv is None and cv is None:
            continue
        # A one-sided metric is an explicit diff, never a silent skip:
        # losing a comparable metric (stopped sampling, block gated
        # out, older schema) is itself a regression; gaining one is
        # worth a note but cannot fail the comparison.
        if cv is None:
            regressions.append(
                f"{label}: {m} {bv:.6g} in baseline but MISSING "
                f"(absent or gated) in candidate")
            continue
        if bv is None:
            print(f"note: {label}: {m} {cv:.6g} in candidate has no "
                  f"baseline value (absent or gated)")
            continue
        if bv == 0:
            continue    # cannot express a relative delta
        delta = (cv - bv) / bv
        lower_better = is_lower_better(m)
        # Measure against the gate so the reported percentage always
        # means the same thing: positive = worse, for every metric.
        worse = delta if lower_better else -delta
        gate = "lower is better" if lower_better else "higher is better"
        if worse > threshold:
            regressions.append(
                f"{label}: {m} {bv:.6g} -> {cv:.6g} "
                f"({abs(worse) * 100.0:.1f}% worse; {gate})")
        elif worse < -threshold:
            improvements.append(
                f"{label}: {m} {bv:.6g} -> {cv:.6g} "
                f"({abs(worse) * 100.0:.1f}% better; {gate})")
    return regressions, improvements


def main(argv):
    paths = []
    threshold = DEFAULT_THRESHOLD
    metrics = list(HIGHER_BETTER) + list(LOWER_BETTER)
    for a in argv[1:]:
        if a.startswith("--threshold="):
            try:
                threshold = float(a.split("=", 1)[1])
            except ValueError:
                print(f"error: bad threshold {a!r}", file=sys.stderr)
                return 2
        elif a.startswith("--metrics="):
            metrics = [m for m in a.split("=", 1)[1].split(",") if m]
        elif a.startswith("--"):
            print(f"error: unknown flag {a!r}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
    if len(paths) != 2:
        print(__doc__.strip())
        return 2

    base_doc = load(paths[0])
    cand_doc = load(paths[1])
    if base_doc is None or cand_doc is None:
        return 2

    base_rows = {r.get("label"): r for r in base_doc["rows"]}
    cand_rows = {r.get("label"): r for r in cand_doc["rows"]}

    regressions = []
    improvements = []
    compared = 0
    for label, base in base_rows.items():
        cand = cand_rows.get(label)
        if cand is None:
            print(f"note: row '{label}' only in baseline")
            continue
        compared += 1
        reg, imp = compare_rows(label, base, cand, metrics, threshold)
        regressions.extend(reg)
        improvements.extend(imp)
    for label in cand_rows:
        if label not in base_rows:
            print(f"note: row '{label}' only in candidate")

    for msg in improvements:
        print(f"IMPROVED   {msg}")
    for msg in regressions:
        print(f"REGRESSION {msg}")
    print(f"compared {compared} rows "
          f"({base_doc.get('bench')}) at threshold "
          f"{threshold * 100.0:.1f}%: "
          f"{len(regressions)} regressions, "
          f"{len(improvements)} improvements")
    if compared == 0:
        print("error: no rows matched by label", file=sys.stderr)
        return 2
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
