#!/usr/bin/env python3
"""Validate a bench --json export against the versioned schema.

Usage: validate_bench_json.py <file.json> [<file.json> ...]

Checks (stdlib only, used by CI and by hand after editing the exporter):
  - schema_version is the known version
  - required top-level / per-row keys are present with sane types
  - per-core phase fractions each sum to 1.0 +/- 1e-6
  - folded stacks and lock windows are structurally well-formed
  - (v2) fingerprint is a 16-hex-digit string and the invariants
    object is consistent (violations == 0 <=> failed list empty)
  - (v3) per-row faults block is present and consistent (armed <=>
    non-empty plan) and lock windows carry completed/goodput plus the
    SYN-counter deltas
  - (v4) per-row overload block is present and internally consistent:
    enabled <=> non-empty spec, offered == admitted + degraded + shed,
    the shed reasons decompose the total, admitted connections are all
    released or in flight, and a disabled row sheds/drops nothing
  - (v5) per-row latency_stages block (span forensics): stage rows
    carry monotone p50 <= p90 <= p99 <= p999 <= max percentiles,
    exemplars are structurally sound, and trace.overwritten_per_core
    sums to trace.events_overwritten
  - (v6) per-row conn block (connection-lifetime census): TCB arena
    gauges vs peaks, bytes_per_conn > 0 whenever TCBs existed,
    TIME_WAIT arithmetic (entered == reaped + recycled + reused +
    still-lingering), ehash probe averages consistent with their
    numerators, and structurally sound ramp checkpoints
  - (v7) per-row sim_core block (DES-core throughput): events_run /
    events_scheduled / sim_ticks always present and non-negative; the
    wall-clock trio (wall_seconds, events_per_sec, wall_per_sim_sec)
    appears all-or-none and, when present, is positive and consistent
    (events_per_sec == events_run / wall_seconds)
  - (v8) per-row fleet block (N-machine topology + L4 balancer tier):
    always present; enabled=false rows carry all-zero counters; flow
    conservation (created == retired + active), active <= active_peak,
    drains started >= completed, probe failures <= probes sent, and
    request_success_ratio in [0, 1]
  - (v9) gray-failure fields inside the fleet block: health_mode is
    "binary"/"score" on enabled rows, score_ejections <= ejections,
    incident funnel is monotone (recovered <= detected <= total), and
    MTTD/MTTR means are non-negative and zero when nothing was
    detected/recovered
Exit status 0 iff every document passes.
"""

import json
import re
import sys

KNOWN_SCHEMA_VERSIONS = (2, 3, 4, 5, 6, 7, 8, 9)

V3_WINDOW_KEYS = ("completed", "goodput", "syn_retransmits",
                  "syn_cookies_sent", "syn_cookies_validated",
                  "accept_queue_rsts")
FAULTS_KEYS = ("plan", "armed", "syn_cookies")
OVERLOAD_KEYS = ("enabled", "spec", "offered", "admitted", "degraded",
                 "shed", "shed_deadline", "shed_worker_cap",
                 "shed_pressure", "released", "inflight",
                 "health_offered", "health_admitted", "served_degraded",
                 "backlog_dropped", "syn_gate_dropped",
                 "pressure_transitions", "pressure_level",
                 "pressure_peak", "softirq_depth_peak",
                 "accept_depth_peak", "epoll_ready_peak",
                 "latency_p50_ticks", "latency_p99_ticks",
                 "latency_samples", "health_probes_started",
                 "health_probes_completed", "health_probes_failed")
# Zero on a disabled row: no admission verdicts, no kernel gate drops.
OVERLOAD_DISABLED_ZERO_KEYS = ("offered", "admitted", "degraded", "shed",
                               "released", "inflight", "served_degraded",
                               "backlog_dropped", "syn_gate_dropped")

ROW_KEYS = ("label", "config", "metrics", "phases", "folded_stacks",
            "locks", "lock_windows", "queue_timelines", "trace",
            "fingerprint", "invariants")
CONFIG_KEYS = ("app", "cores", "flavor")
METRIC_KEYS = ("cps", "rps", "served", "core_util")
PHASE_KEYS = ("names", "per_core", "machine")
TRACE_KEYS = ("window_span", "events_recorded", "events_overwritten")
INVARIANT_KEYS = ("checks_run", "violations", "failed")
LATENCY_STAGES_KEYS = ("enabled", "completed", "live", "shed",
                       "spans_recorded", "spans_dropped",
                       "traces_dropped", "dominant_tail_stage",
                       "stages", "exemplars")
STAGE_ROW_KEYS = ("stage", "count", "p50", "p90", "p99", "p999", "max",
                  "total_ticks")
EXEMPLAR_KEYS = ("percentile", "conn_id", "latency", "unattributed",
                 "stages", "cores")

SIM_CORE_KEYS = ("events_run", "events_scheduled", "sim_ticks")

FLEET_KEYS = ("enabled", "server_machines", "balancers", "policy",
              "flows_created", "flows_retired", "flows_active",
              "flows_active_peak", "tuple_reuse", "idle_retired",
              "forwarded_c2s", "forwarded_s2c", "shed_no_backend",
              "shed_capacity", "nat_rsts", "bounded_load_fallbacks",
              "pressure_avoids", "probes_sent", "probe_failures",
              "ejections", "readmissions", "drains_started",
              "drains_completed", "undrained_flows", "restarts",
              "crashes", "lb_crashes", "vip_takeovers", "tx_suppressed",
              "corpse_rsts", "blackholed", "link_packets",
              "link_queued_ticks", "request_success_ratio")
# v9 additions (required only when schema_version >= 9).
FLEET_V9_KEYS = ("health_mode", "score_ejections", "ramp_skips",
                 "ejections_capped", "degrades_applied",
                 "flap_transitions", "partitions_armed",
                 "degrade_dropped", "degrade_delayed",
                 "partition_dropped", "incidents_total",
                 "incidents_detected", "incidents_recovered",
                 "mttd_ms_mean", "mttr_ms_mean")
# Zero on a single-machine (fleet-disabled) row: no balancer tier ran.
FLEET_DISABLED_ZERO_KEYS = tuple(
    k for k in FLEET_KEYS if k not in ("enabled", "policy"))
FLEET_V9_DISABLED_ZERO_KEYS = tuple(
    k for k in FLEET_V9_KEYS if k != "health_mode")

CONN_KEYS = ("tcb_live", "tcb_live_peak", "tcb_created", "slab_bytes",
             "bytes_per_conn", "established_curr", "established_peak",
             "time_wait_curr", "time_wait_peak", "time_wait_entered",
             "time_wait_reaped", "time_wait_recycled", "time_wait_reused",
             "time_wait_syn_dropped", "time_wait_acks",
             "port_alloc_failures", "ehash_lookups",
             "ehash_probes_walked", "ehash_lookup_cycles",
             "ehash_resizes", "avg_probe_len", "cycles_per_lookup",
             "ramp")
RAMP_KEYS = ("live", "bytes_per_conn", "cycles_per_lookup",
             "avg_probe_len")

FINGERPRINT_RE = re.compile(r"^0x[0-9a-f]{16}$")


def fail(path, msg):
    print(f"{path}: FAIL: {msg}")
    return False


def require(obj, keys, path, where):
    for k in keys:
        if k not in obj:
            return fail(path, f"{where} missing key '{k}'")
    return True


def validate(path):
    with open(path) as f:
        doc = json.load(f)

    version = doc.get("schema_version")
    if version not in KNOWN_SCHEMA_VERSIONS:
        return fail(path, f"schema_version {version!r}, expected one of "
                          f"{KNOWN_SCHEMA_VERSIONS}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        return fail(path, "missing/empty 'bench' name")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "'rows' missing or empty")

    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not require(row, ROW_KEYS, path, where):
            return False
        if not require(row["config"], CONFIG_KEYS, path, f"{where}.config"):
            return False
        if not require(row["metrics"], METRIC_KEYS, path,
                       f"{where}.metrics"):
            return False
        if not require(row["phases"], PHASE_KEYS, path, f"{where}.phases"):
            return False
        if not require(row["trace"], TRACE_KEYS, path, f"{where}.trace"):
            return False

        names = row["phases"]["names"]
        for c, fracs in enumerate(row["phases"]["per_core"]):
            if len(fracs) != len(names):
                return fail(path, f"{where} core {c}: {len(fracs)} "
                                  f"fractions vs {len(names)} names")
            total = sum(fracs)
            if abs(total - 1.0) > 1e-6:
                return fail(path, f"{where} core {c}: phase fractions "
                                  f"sum to {total!r}, not 1.0")
        for fs in row["folded_stacks"]:
            if "stack" not in fs or "cycles" not in fs:
                return fail(path, f"{where}: malformed folded stack {fs!r}")
        for w, win in enumerate(row["lock_windows"]):
            if not all(k in win for k in ("start", "end", "locks")):
                return fail(path, f"{where}.lock_windows[{w}] malformed")
            if win["end"] < win["start"]:
                return fail(path, f"{where}.lock_windows[{w}] end < start")
            if version >= 3:
                missing = [k for k in V3_WINDOW_KEYS if k not in win]
                if missing:
                    return fail(path, f"{where}.lock_windows[{w}] missing "
                                      f"v3 keys {missing}")
                if win["goodput"] < 0 or win["completed"] < 0:
                    return fail(path, f"{where}.lock_windows[{w}] "
                                      f"negative completed/goodput")

        if version >= 3:
            faults = row.get("faults")
            if not isinstance(faults, dict) or not require(
                    faults, FAULTS_KEYS, path, f"{where}.faults"):
                return fail(path, f"{where}.faults missing or malformed")
            if not isinstance(faults["plan"], str):
                return fail(path, f"{where}.faults.plan is not a string")
            if bool(faults["armed"]) != bool(faults["plan"]):
                return fail(path, f"{where}.faults: armed="
                                  f"{faults['armed']!r} inconsistent with "
                                  f"plan {faults['plan']!r}")
        if version >= 4:
            ov = row.get("overload")
            if not isinstance(ov, dict) or not require(
                    ov, OVERLOAD_KEYS, path, f"{where}.overload"):
                return fail(path, f"{where}.overload missing or malformed")
            if not isinstance(ov["spec"], str):
                return fail(path, f"{where}.overload.spec is not a string")
            if bool(ov["enabled"]) != bool(ov["spec"]):
                return fail(path, f"{where}.overload: enabled="
                                  f"{ov['enabled']!r} inconsistent with "
                                  f"spec {ov['spec']!r}")
            if ov["offered"] != ov["admitted"] + ov["degraded"] + ov["shed"]:
                return fail(path, f"{where}.overload: offered "
                                  f"{ov['offered']} != admitted + degraded "
                                  f"+ shed")
            if ov["shed"] != (ov["shed_deadline"] + ov["shed_worker_cap"] +
                              ov["shed_pressure"]):
                return fail(path, f"{where}.overload: shed reasons do not "
                                  f"decompose shed={ov['shed']}")
            if (ov["admitted"] + ov["degraded"] !=
                    ov["released"] + ov["inflight"]):
                return fail(path, f"{where}.overload: admitted + degraded "
                                  f"!= released + inflight")
            if ov["health_admitted"] > ov["health_offered"]:
                return fail(path, f"{where}.overload: health_admitted > "
                                  f"health_offered")
            if not ov["enabled"]:
                dirty = [k for k in OVERLOAD_DISABLED_ZERO_KEYS if ov[k]]
                if dirty:
                    return fail(path, f"{where}.overload: disabled but "
                                      f"non-zero {dirty}")

        if version >= 5:
            ls = row.get("latency_stages")
            if not isinstance(ls, dict) or not require(
                    ls, LATENCY_STAGES_KEYS, path,
                    f"{where}.latency_stages"):
                return fail(path,
                            f"{where}.latency_stages missing or malformed")
            for s, st in enumerate(ls["stages"]):
                sw = f"{where}.latency_stages.stages[{s}]"
                if not require(st, STAGE_ROW_KEYS, path, sw):
                    return False
                if not (st["p50"] <= st["p90"] <= st["p99"] <=
                        st["p999"] <= st["max"]):
                    return fail(path, f"{sw} ({st['stage']}): "
                                      f"percentiles not monotone")
                if st["count"] <= 0:
                    return fail(path, f"{sw} ({st['stage']}): "
                                      f"count must be positive")
            for e, ex in enumerate(ls["exemplars"]):
                ew = f"{where}.latency_stages.exemplars[{e}]"
                if not require(ex, EXEMPLAR_KEYS, path, ew):
                    return False
                if ex["percentile"] not in ("p50", "p99", "p999"):
                    return fail(path, f"{ew}: bad percentile "
                                      f"{ex['percentile']!r}")
                if ex["unattributed"] > ex["latency"]:
                    return fail(path, f"{ew}: unattributed > latency")
                if not isinstance(ex["cores"], list):
                    return fail(path, f"{ew}: cores is not a list")
            if ls["enabled"] and ls["completed"] > 0 and not ls["stages"]:
                return fail(path, f"{where}.latency_stages: completed "
                                  f"connections but no stage rows")
            opc = row["trace"].get("overwritten_per_core")
            if not isinstance(opc, list):
                return fail(path, f"{where}.trace.overwritten_per_core "
                                  f"missing (v5)")
            if sum(opc) != row["trace"]["events_overwritten"]:
                return fail(path, f"{where}.trace: overwritten_per_core "
                                  f"sums to {sum(opc)}, expected "
                                  f"{row['trace']['events_overwritten']}")

        if version >= 6:
            cn = row.get("conn")
            if not isinstance(cn, dict) or not require(
                    cn, CONN_KEYS, path, f"{where}.conn"):
                return fail(path, f"{where}.conn missing or malformed")
            if cn["tcb_live"] > cn["tcb_live_peak"]:
                return fail(path, f"{where}.conn: tcb_live > peak")
            if cn["established_curr"] > cn["established_peak"]:
                return fail(path, f"{where}.conn: established_curr > "
                                  f"peak")
            if cn["time_wait_curr"] > cn["time_wait_peak"]:
                return fail(path, f"{where}.conn: time_wait_curr > peak")
            if cn["tcb_live_peak"] > cn["tcb_created"]:
                return fail(path, f"{where}.conn: tcb_live_peak > "
                                  f"tcb_created")
            if cn["tcb_live_peak"] > 0 and cn["bytes_per_conn"] <= 0:
                return fail(path, f"{where}.conn: TCBs existed but "
                                  f"bytes_per_conn is "
                                  f"{cn['bytes_per_conn']!r}")
            # Every lingering entry left the table exactly one way (or
            # is still in it at collection time).
            accounted = (cn["time_wait_reaped"] +
                         cn["time_wait_recycled"] +
                         cn["time_wait_reused"] + cn["time_wait_curr"])
            if cn["time_wait_entered"] < accounted:
                return fail(path, f"{where}.conn: TIME_WAIT exits "
                                  f"({accounted}) exceed entries "
                                  f"({cn['time_wait_entered']})")
            if cn["ehash_lookups"] == 0 and (cn["avg_probe_len"] != 0 or
                                             cn["cycles_per_lookup"] != 0):
                return fail(path, f"{where}.conn: probe averages with "
                                  f"zero lookups")
            if cn["ehash_lookups"] > 0:
                avg = cn["ehash_probes_walked"] / cn["ehash_lookups"]
                if abs(avg - cn["avg_probe_len"]) > 1e-6 * max(1.0, avg):
                    return fail(path, f"{where}.conn: avg_probe_len "
                                      f"{cn['avg_probe_len']!r} != "
                                      f"probes/lookups {avg!r}")
            ramp = cn["ramp"]
            if not isinstance(ramp, list):
                return fail(path, f"{where}.conn.ramp is not a list")
            for p, pt in enumerate(ramp):
                pw = f"{where}.conn.ramp[{p}]"
                if not require(pt, RAMP_KEYS, path, pw):
                    return False
                if pt["live"] < 0 or pt["bytes_per_conn"] < 0:
                    return fail(path, f"{pw}: negative gauge")

        if version >= 7:
            sc = row.get("sim_core")
            if not isinstance(sc, dict) or not require(
                    sc, SIM_CORE_KEYS, path, f"{where}.sim_core"):
                return fail(path, f"{where}.sim_core missing or malformed")
            for k in SIM_CORE_KEYS:
                if not isinstance(sc[k], int) or sc[k] < 0:
                    return fail(path, f"{where}.sim_core.{k} malformed")
            # Wall-clock trio: wall_seconds and events_per_sec appear
            # together (wall-stamped rows only); wall_per_sim_sec rides
            # along whenever simulated time actually advanced.
            has_wall = "wall_seconds" in sc
            if has_wall != ("events_per_sec" in sc):
                return fail(path, f"{where}.sim_core: wall_seconds and "
                                  f"events_per_sec must appear together")
            if "wall_per_sim_sec" in sc and not has_wall:
                return fail(path, f"{where}.sim_core: wall_per_sim_sec "
                                  f"without wall_seconds")
            if has_wall:
                if sc["wall_seconds"] <= 0:
                    return fail(path, f"{where}.sim_core: wall_seconds "
                                      f"not positive")
                want = sc["events_run"] / sc["wall_seconds"]
                if abs(want - sc["events_per_sec"]) > 1e-6 * max(1.0, want):
                    return fail(path, f"{where}.sim_core: events_per_sec "
                                      f"{sc['events_per_sec']!r} != "
                                      f"events_run/wall_seconds {want!r}")
                if sc["sim_ticks"] > 0 and "wall_per_sim_sec" not in sc:
                    return fail(path, f"{where}.sim_core: sim time "
                                      f"advanced but wall_per_sim_sec "
                                      f"missing")
                if sc.get("wall_per_sim_sec", 1) <= 0:
                    return fail(path, f"{where}.sim_core: "
                                      f"wall_per_sim_sec not positive")

        if version >= 8:
            fl = row.get("fleet")
            if not isinstance(fl, dict) or not require(
                    fl, FLEET_KEYS, path, f"{where}.fleet"):
                return fail(path, f"{where}.fleet missing or malformed")
            if not isinstance(fl["policy"], str):
                return fail(path, f"{where}.fleet.policy is not a "
                                  f"string")
            if not fl["enabled"]:
                dirty = [k for k in FLEET_DISABLED_ZERO_KEYS if fl[k]]
                if dirty:
                    return fail(path, f"{where}.fleet: disabled but "
                                      f"non-zero {dirty}")
            else:
                if fl["server_machines"] < 1 or fl["balancers"] < 1:
                    return fail(path, f"{where}.fleet: enabled with "
                                      f"empty topology")
                # Every flow the balancer tier ever created either
                # retired or is still in a flow table at collection.
                if fl["flows_created"] != (fl["flows_retired"] +
                                           fl["flows_active"]):
                    return fail(path, f"{where}.fleet: flows_created "
                                      f"{fl['flows_created']} != "
                                      f"retired + active")
                if fl["flows_active"] > fl["flows_active_peak"]:
                    return fail(path, f"{where}.fleet: flows_active > "
                                      f"flows_active_peak")
                if fl["drains_completed"] > fl["drains_started"]:
                    return fail(path, f"{where}.fleet: drains_completed "
                                      f"> drains_started")
                if fl["probe_failures"] > fl["probes_sent"]:
                    return fail(path, f"{where}.fleet: probe_failures "
                                      f"> probes_sent")
                if not 0.0 <= fl["request_success_ratio"] <= 1.0:
                    return fail(path, f"{where}.fleet: "
                                      f"request_success_ratio outside "
                                      f"[0, 1]")

        if version >= 9:
            fl = row["fleet"]
            if not require(fl, FLEET_V9_KEYS, path, f"{where}.fleet"):
                return False
            if not isinstance(fl["health_mode"], str):
                return fail(path, f"{where}.fleet.health_mode is not "
                                  f"a string")
            if not fl["enabled"]:
                dirty = [k for k in FLEET_V9_DISABLED_ZERO_KEYS
                         if fl[k]]
                if dirty:
                    return fail(path, f"{where}.fleet: disabled but "
                                      f"non-zero {dirty}")
            else:
                if fl["health_mode"] not in ("binary", "score"):
                    return fail(path, f"{where}.fleet.health_mode "
                                      f"{fl['health_mode']!r} not "
                                      f"binary/score")
                if fl["score_ejections"] > fl["ejections"]:
                    return fail(path, f"{where}.fleet: score_ejections "
                                      f"> ejections")
                if not (fl["incidents_recovered"] <=
                        fl["incidents_detected"] <=
                        fl["incidents_total"]):
                    return fail(path, f"{where}.fleet: incident funnel "
                                      f"not monotone (recovered <= "
                                      f"detected <= total)")
                for mk, ck in (("mttd_ms_mean", "incidents_detected"),
                               ("mttr_ms_mean", "incidents_recovered")):
                    if fl[mk] < 0:
                        return fail(path, f"{where}.fleet.{mk} negative")
                    if fl[ck] == 0 and fl[mk] != 0:
                        return fail(path, f"{where}.fleet.{mk} non-zero "
                                          f"with {ck} == 0")

        for qname, samples in row["queue_timelines"].items():
            ticks = [s[0] for s in samples]
            if ticks != sorted(ticks):
                return fail(path, f"{where}.queue_timelines[{qname}] "
                                  f"ticks not monotonic")

        fp = row["fingerprint"]
        if not isinstance(fp, str) or not FINGERPRINT_RE.match(fp):
            return fail(path, f"{where}.fingerprint {fp!r} is not a "
                              f"0x + 16-hex-digit string")
        inv = row["invariants"]
        if not require(inv, INVARIANT_KEYS, path, f"{where}.invariants"):
            return False
        if not isinstance(inv["checks_run"], int) or inv["checks_run"] < 0:
            return fail(path, f"{where}.invariants.checks_run malformed")
        if not isinstance(inv["violations"], int) or inv["violations"] < 0:
            return fail(path, f"{where}.invariants.violations malformed")
        if not isinstance(inv["failed"], list) or any(
                not isinstance(n, str) for n in inv["failed"]):
            return fail(path, f"{where}.invariants.failed malformed")
        if (inv["violations"] == 0) != (len(inv["failed"]) == 0):
            return fail(path, f"{where}.invariants: violations="
                              f"{inv['violations']} but failed list has "
                              f"{len(inv['failed'])} entries")

    print(f"{path}: OK ({doc['bench']}, {len(rows)} rows, "
          f"schema v{doc['schema_version']})")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    return 0 if all(validate(p) for p in argv[1:]) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
