#!/usr/bin/env python3
"""Validate a bench --json export against the versioned schema.

Usage: validate_bench_json.py [--quiet] <file.json> [<file.json> ...]

Every violation in every file is reported (one line each) before the
exit status is decided -- a document with three problems prints three
lines, not just the first. With --quiet, per-file OK lines are
suppressed and only violations print.

Checks (stdlib only, used by CI and by hand after editing the exporter):
  - schema_version is the known version
  - required top-level / per-row keys are present with sane types
  - per-core phase fractions each sum to 1.0 +/- 1e-6
  - folded stacks and lock windows are structurally well-formed
  - (v2) fingerprint is a 16-hex-digit string and the invariants
    object is consistent (violations == 0 <=> failed list empty)
  - (v3) per-row faults block is present and consistent (armed <=>
    non-empty plan) and lock windows carry completed/goodput plus the
    SYN-counter deltas
  - (v4) per-row overload block is present and internally consistent:
    enabled <=> non-empty spec, offered == admitted + degraded + shed,
    the shed reasons decompose the total, admitted connections are all
    released or in flight, and a disabled row sheds/drops nothing
  - (v5) per-row latency_stages block (span forensics): stage rows
    carry monotone p50 <= p90 <= p99 <= p999 <= max percentiles,
    exemplars are structurally sound, and trace.overwritten_per_core
    sums to trace.events_overwritten
  - (v6) per-row conn block (connection-lifetime census): TCB arena
    gauges vs peaks, bytes_per_conn > 0 whenever TCBs existed,
    TIME_WAIT arithmetic (entered == reaped + recycled + reused +
    still-lingering), ehash probe averages consistent with their
    numerators, and structurally sound ramp checkpoints
  - (v7) per-row sim_core block (DES-core throughput): events_run /
    events_scheduled / sim_ticks always present and non-negative; the
    wall-clock trio (wall_seconds, events_per_sec, wall_per_sim_sec)
    appears all-or-none and, when present, is positive and consistent
    (events_per_sec == events_run / wall_seconds)
  - (v8) per-row fleet block (N-machine topology + L4 balancer tier):
    always present; enabled=false rows carry all-zero counters; flow
    conservation (created == retired + active), active <= active_peak,
    drains started >= completed, probe failures <= probes sent, and
    request_success_ratio in [0, 1]
  - (v9) gray-failure fields inside the fleet block: health_mode is
    "binary"/"score" on enabled rows, score_ejections <= ejections,
    incident funnel is monotone (recovered <= detected <= total), and
    MTTD/MTTR means are non-negative and zero when nothing was
    detected/recovered
  - (v10) distributed-tracing fields inside the fleet block (trace
    accounting is monotone: stitched/orphans/duplicates <= completed
    <= started, burn-alert timestamp present iff an alert fired),
    per-row timeseries block (known metric kinds, strictly monotone
    sample ticks, positive sample period when enabled), and per-row
    fleet_trace block (hop decomposition: monotone p50 <= p99 <= p999
    <= max per hop, shares in [0, 1], dominant hops named by a hop row)
Exit status 0 iff every document passes.
"""

import json
import re
import sys

KNOWN_SCHEMA_VERSIONS = (2, 3, 4, 5, 6, 7, 8, 9, 10)

V3_WINDOW_KEYS = ("completed", "goodput", "syn_retransmits",
                  "syn_cookies_sent", "syn_cookies_validated",
                  "accept_queue_rsts")
FAULTS_KEYS = ("plan", "armed", "syn_cookies")
OVERLOAD_KEYS = ("enabled", "spec", "offered", "admitted", "degraded",
                 "shed", "shed_deadline", "shed_worker_cap",
                 "shed_pressure", "released", "inflight",
                 "health_offered", "health_admitted", "served_degraded",
                 "backlog_dropped", "syn_gate_dropped",
                 "pressure_transitions", "pressure_level",
                 "pressure_peak", "softirq_depth_peak",
                 "accept_depth_peak", "epoll_ready_peak",
                 "latency_p50_ticks", "latency_p99_ticks",
                 "latency_samples", "health_probes_started",
                 "health_probes_completed", "health_probes_failed")
# Zero on a disabled row: no admission verdicts, no kernel gate drops.
OVERLOAD_DISABLED_ZERO_KEYS = ("offered", "admitted", "degraded", "shed",
                               "released", "inflight", "served_degraded",
                               "backlog_dropped", "syn_gate_dropped")

ROW_KEYS = ("label", "config", "metrics", "phases", "folded_stacks",
            "locks", "lock_windows", "queue_timelines", "trace",
            "fingerprint", "invariants")
CONFIG_KEYS = ("app", "cores", "flavor")
METRIC_KEYS = ("cps", "rps", "served", "core_util")
PHASE_KEYS = ("names", "per_core", "machine")
TRACE_KEYS = ("window_span", "events_recorded", "events_overwritten")
INVARIANT_KEYS = ("checks_run", "violations", "failed")
LATENCY_STAGES_KEYS = ("enabled", "completed", "live", "shed",
                       "spans_recorded", "spans_dropped",
                       "traces_dropped", "dominant_tail_stage",
                       "stages", "exemplars")
STAGE_ROW_KEYS = ("stage", "count", "p50", "p90", "p99", "p999", "max",
                  "total_ticks")
EXEMPLAR_KEYS = ("percentile", "conn_id", "latency", "unattributed",
                 "stages", "cores")

SIM_CORE_KEYS = ("events_run", "events_scheduled", "sim_ticks")

FLEET_KEYS = ("enabled", "server_machines", "balancers", "policy",
              "flows_created", "flows_retired", "flows_active",
              "flows_active_peak", "tuple_reuse", "idle_retired",
              "forwarded_c2s", "forwarded_s2c", "shed_no_backend",
              "shed_capacity", "nat_rsts", "bounded_load_fallbacks",
              "pressure_avoids", "probes_sent", "probe_failures",
              "ejections", "readmissions", "drains_started",
              "drains_completed", "undrained_flows", "restarts",
              "crashes", "lb_crashes", "vip_takeovers", "tx_suppressed",
              "corpse_rsts", "blackholed", "link_packets",
              "link_queued_ticks", "request_success_ratio")
# v9 additions (required only when schema_version >= 9).
FLEET_V9_KEYS = ("health_mode", "score_ejections", "ramp_skips",
                 "ejections_capped", "degrades_applied",
                 "flap_transitions", "partitions_armed",
                 "degrade_dropped", "degrade_delayed",
                 "partition_dropped", "incidents_total",
                 "incidents_detected", "incidents_recovered",
                 "mttd_ms_mean", "mttr_ms_mean")
# v10 additions: distributed-trace stitching + SLO burn alerts.
FLEET_V10_KEYS = ("traces_started", "traces_completed",
                  "traces_stitched", "trace_orphans",
                  "trace_duplicates", "span_reconcile_violations",
                  "slo_fast_alerts", "slo_slow_alerts",
                  "slo_first_fast_alert_ms")
# Zero on a single-machine (fleet-disabled) row: no balancer tier ran.
FLEET_DISABLED_ZERO_KEYS = tuple(
    k for k in FLEET_KEYS if k not in ("enabled", "policy"))
FLEET_V9_DISABLED_ZERO_KEYS = tuple(
    k for k in FLEET_V9_KEYS if k != "health_mode")
FLEET_V10_DISABLED_ZERO_KEYS = FLEET_V10_KEYS

TIMESERIES_KEYS = ("enabled", "sample_period", "series")
SERIES_KEYS = ("name", "kind", "points")
METRIC_KINDS = ("counter", "gauge", "histogram")
FLEET_TRACE_KEYS = ("enabled", "traces_completed", "orphans",
                    "duplicates", "stitched", "e2e_p50", "e2e_p99",
                    "e2e_p999", "dominant_p50", "dominant_p99",
                    "dominant_p999", "hops")
HOP_ROW_KEYS = ("hop", "p50", "p99", "p999", "max", "share")

CONN_KEYS = ("tcb_live", "tcb_live_peak", "tcb_created", "slab_bytes",
             "bytes_per_conn", "established_curr", "established_peak",
             "time_wait_curr", "time_wait_peak", "time_wait_entered",
             "time_wait_reaped", "time_wait_recycled", "time_wait_reused",
             "time_wait_syn_dropped", "time_wait_acks",
             "port_alloc_failures", "ehash_lookups",
             "ehash_probes_walked", "ehash_lookup_cycles",
             "ehash_resizes", "avg_probe_len", "cycles_per_lookup",
             "ramp")
RAMP_KEYS = ("live", "bytes_per_conn", "cycles_per_lookup",
             "avg_probe_len")

FINGERPRINT_RE = re.compile(r"^0x[0-9a-f]{16}$")


class Checker:
    """Accumulates violations for one document; never stops at the
    first problem, so a broken exporter shows its full damage in one
    validator run."""

    def __init__(self, path):
        self.path = path
        self.errors = []

    def fail(self, msg):
        self.errors.append(msg)
        return False

    def require(self, obj, keys, where):
        ok = True
        for k in keys:
            if k not in obj:
                ok = self.fail(f"{where} missing key '{k}'")
        return ok

    def ok(self):
        return not self.errors


def check_phases(c, row, where):
    names = row["phases"].get("names", [])
    for cr, fracs in enumerate(row["phases"].get("per_core", [])):
        if len(fracs) != len(names):
            c.fail(f"{where} core {cr}: {len(fracs)} fractions vs "
                   f"{len(names)} names")
            continue
        total = sum(fracs)
        if abs(total - 1.0) > 1e-6:
            c.fail(f"{where} core {cr}: phase fractions sum to "
                   f"{total!r}, not 1.0")


def check_lock_windows(c, row, where, version):
    for w, win in enumerate(row["lock_windows"]):
        if not all(k in win for k in ("start", "end", "locks")):
            c.fail(f"{where}.lock_windows[{w}] malformed")
            continue
        if win["end"] < win["start"]:
            c.fail(f"{where}.lock_windows[{w}] end < start")
        if version >= 3:
            missing = [k for k in V3_WINDOW_KEYS if k not in win]
            if missing:
                c.fail(f"{where}.lock_windows[{w}] missing v3 keys "
                       f"{missing}")
                continue
            if win["goodput"] < 0 or win["completed"] < 0:
                c.fail(f"{where}.lock_windows[{w}] negative "
                       f"completed/goodput")


def check_faults(c, row, where):
    faults = row.get("faults")
    if not isinstance(faults, dict):
        c.fail(f"{where}.faults missing or malformed")
        return
    if not c.require(faults, FAULTS_KEYS, f"{where}.faults"):
        return
    if not isinstance(faults["plan"], str):
        c.fail(f"{where}.faults.plan is not a string")
        return
    if bool(faults["armed"]) != bool(faults["plan"]):
        c.fail(f"{where}.faults: armed={faults['armed']!r} inconsistent "
               f"with plan {faults['plan']!r}")


def check_overload(c, row, where):
    ov = row.get("overload")
    if not isinstance(ov, dict):
        c.fail(f"{where}.overload missing or malformed")
        return
    if not c.require(ov, OVERLOAD_KEYS, f"{where}.overload"):
        return
    if not isinstance(ov["spec"], str):
        c.fail(f"{where}.overload.spec is not a string")
        return
    if bool(ov["enabled"]) != bool(ov["spec"]):
        c.fail(f"{where}.overload: enabled={ov['enabled']!r} "
               f"inconsistent with spec {ov['spec']!r}")
    if ov["offered"] != ov["admitted"] + ov["degraded"] + ov["shed"]:
        c.fail(f"{where}.overload: offered {ov['offered']} != admitted "
               f"+ degraded + shed")
    if ov["shed"] != (ov["shed_deadline"] + ov["shed_worker_cap"] +
                      ov["shed_pressure"]):
        c.fail(f"{where}.overload: shed reasons do not decompose "
               f"shed={ov['shed']}")
    if ov["admitted"] + ov["degraded"] != ov["released"] + ov["inflight"]:
        c.fail(f"{where}.overload: admitted + degraded != released + "
               f"inflight")
    if ov["health_admitted"] > ov["health_offered"]:
        c.fail(f"{where}.overload: health_admitted > health_offered")
    if not ov["enabled"]:
        dirty = [k for k in OVERLOAD_DISABLED_ZERO_KEYS if ov[k]]
        if dirty:
            c.fail(f"{where}.overload: disabled but non-zero {dirty}")


def check_latency_stages(c, row, where):
    ls = row.get("latency_stages")
    if not isinstance(ls, dict):
        c.fail(f"{where}.latency_stages missing or malformed")
        return
    if not c.require(ls, LATENCY_STAGES_KEYS, f"{where}.latency_stages"):
        return
    for s, st in enumerate(ls["stages"]):
        sw = f"{where}.latency_stages.stages[{s}]"
        if not c.require(st, STAGE_ROW_KEYS, sw):
            continue
        if not (st["p50"] <= st["p90"] <= st["p99"] <=
                st["p999"] <= st["max"]):
            c.fail(f"{sw} ({st['stage']}): percentiles not monotone")
        if st["count"] <= 0:
            c.fail(f"{sw} ({st['stage']}): count must be positive")
    for e, ex in enumerate(ls["exemplars"]):
        ew = f"{where}.latency_stages.exemplars[{e}]"
        if not c.require(ex, EXEMPLAR_KEYS, ew):
            continue
        if ex["percentile"] not in ("p50", "p99", "p999"):
            c.fail(f"{ew}: bad percentile {ex['percentile']!r}")
        if ex["unattributed"] > ex["latency"]:
            c.fail(f"{ew}: unattributed > latency")
        if not isinstance(ex["cores"], list):
            c.fail(f"{ew}: cores is not a list")
    if ls["enabled"] and ls["completed"] > 0 and not ls["stages"]:
        c.fail(f"{where}.latency_stages: completed connections but no "
               f"stage rows")
    opc = row["trace"].get("overwritten_per_core")
    if not isinstance(opc, list):
        c.fail(f"{where}.trace.overwritten_per_core missing (v5)")
    elif sum(opc) != row["trace"]["events_overwritten"]:
        c.fail(f"{where}.trace: overwritten_per_core sums to "
               f"{sum(opc)}, expected "
               f"{row['trace']['events_overwritten']}")


def check_conn(c, row, where):
    cn = row.get("conn")
    if not isinstance(cn, dict):
        c.fail(f"{where}.conn missing or malformed")
        return
    if not c.require(cn, CONN_KEYS, f"{where}.conn"):
        return
    if cn["tcb_live"] > cn["tcb_live_peak"]:
        c.fail(f"{where}.conn: tcb_live > peak")
    if cn["established_curr"] > cn["established_peak"]:
        c.fail(f"{where}.conn: established_curr > peak")
    if cn["time_wait_curr"] > cn["time_wait_peak"]:
        c.fail(f"{where}.conn: time_wait_curr > peak")
    if cn["tcb_live_peak"] > cn["tcb_created"]:
        c.fail(f"{where}.conn: tcb_live_peak > tcb_created")
    if cn["tcb_live_peak"] > 0 and cn["bytes_per_conn"] <= 0:
        c.fail(f"{where}.conn: TCBs existed but bytes_per_conn is "
               f"{cn['bytes_per_conn']!r}")
    # Every lingering entry left the table exactly one way (or is
    # still in it at collection time).
    accounted = (cn["time_wait_reaped"] + cn["time_wait_recycled"] +
                 cn["time_wait_reused"] + cn["time_wait_curr"])
    if cn["time_wait_entered"] < accounted:
        c.fail(f"{where}.conn: TIME_WAIT exits ({accounted}) exceed "
               f"entries ({cn['time_wait_entered']})")
    if cn["ehash_lookups"] == 0 and (cn["avg_probe_len"] != 0 or
                                     cn["cycles_per_lookup"] != 0):
        c.fail(f"{where}.conn: probe averages with zero lookups")
    if cn["ehash_lookups"] > 0:
        avg = cn["ehash_probes_walked"] / cn["ehash_lookups"]
        if abs(avg - cn["avg_probe_len"]) > 1e-6 * max(1.0, avg):
            c.fail(f"{where}.conn: avg_probe_len "
                   f"{cn['avg_probe_len']!r} != probes/lookups {avg!r}")
    ramp = cn["ramp"]
    if not isinstance(ramp, list):
        c.fail(f"{where}.conn.ramp is not a list")
        return
    for p, pt in enumerate(ramp):
        pw = f"{where}.conn.ramp[{p}]"
        if not c.require(pt, RAMP_KEYS, pw):
            continue
        if pt["live"] < 0 or pt["bytes_per_conn"] < 0:
            c.fail(f"{pw}: negative gauge")


def check_sim_core(c, row, where):
    sc = row.get("sim_core")
    if not isinstance(sc, dict):
        c.fail(f"{where}.sim_core missing or malformed")
        return
    if not c.require(sc, SIM_CORE_KEYS, f"{where}.sim_core"):
        return
    for k in SIM_CORE_KEYS:
        if not isinstance(sc[k], int) or sc[k] < 0:
            c.fail(f"{where}.sim_core.{k} malformed")
            return
    # Wall-clock trio: wall_seconds and events_per_sec appear together
    # (wall-stamped rows only); wall_per_sim_sec rides along whenever
    # simulated time actually advanced.
    has_wall = "wall_seconds" in sc
    if has_wall != ("events_per_sec" in sc):
        c.fail(f"{where}.sim_core: wall_seconds and events_per_sec "
               f"must appear together")
        return
    if "wall_per_sim_sec" in sc and not has_wall:
        c.fail(f"{where}.sim_core: wall_per_sim_sec without "
               f"wall_seconds")
    if has_wall:
        if sc["wall_seconds"] <= 0:
            c.fail(f"{where}.sim_core: wall_seconds not positive")
            return
        want = sc["events_run"] / sc["wall_seconds"]
        if abs(want - sc["events_per_sec"]) > 1e-6 * max(1.0, want):
            c.fail(f"{where}.sim_core: events_per_sec "
                   f"{sc['events_per_sec']!r} != events_run/"
                   f"wall_seconds {want!r}")
        if sc["sim_ticks"] > 0 and "wall_per_sim_sec" not in sc:
            c.fail(f"{where}.sim_core: sim time advanced but "
                   f"wall_per_sim_sec missing")
        if sc.get("wall_per_sim_sec", 1) <= 0:
            c.fail(f"{where}.sim_core: wall_per_sim_sec not positive")


def check_fleet(c, row, where, version):
    fl = row.get("fleet")
    if not isinstance(fl, dict):
        c.fail(f"{where}.fleet missing or malformed")
        return
    if not c.require(fl, FLEET_KEYS, f"{where}.fleet"):
        return
    if not isinstance(fl["policy"], str):
        c.fail(f"{where}.fleet.policy is not a string")
        return
    if not fl["enabled"]:
        dirty = [k for k in FLEET_DISABLED_ZERO_KEYS if fl[k]]
        if dirty:
            c.fail(f"{where}.fleet: disabled but non-zero {dirty}")
    else:
        if fl["server_machines"] < 1 or fl["balancers"] < 1:
            c.fail(f"{where}.fleet: enabled with empty topology")
        # Every flow the balancer tier ever created either retired or
        # is still in a flow table at collection.
        if fl["flows_created"] != fl["flows_retired"] + fl["flows_active"]:
            c.fail(f"{where}.fleet: flows_created "
                   f"{fl['flows_created']} != retired + active")
        if fl["flows_active"] > fl["flows_active_peak"]:
            c.fail(f"{where}.fleet: flows_active > flows_active_peak")
        if fl["drains_completed"] > fl["drains_started"]:
            c.fail(f"{where}.fleet: drains_completed > drains_started")
        if fl["probe_failures"] > fl["probes_sent"]:
            c.fail(f"{where}.fleet: probe_failures > probes_sent")
        if not 0.0 <= fl["request_success_ratio"] <= 1.0:
            c.fail(f"{where}.fleet: request_success_ratio outside "
                   f"[0, 1]")

    if version >= 9:
        check_fleet_v9(c, fl, where)
    if version >= 10:
        check_fleet_v10(c, fl, where)


def check_fleet_v9(c, fl, where):
    if not c.require(fl, FLEET_V9_KEYS, f"{where}.fleet"):
        return
    if not isinstance(fl["health_mode"], str):
        c.fail(f"{where}.fleet.health_mode is not a string")
        return
    if not fl["enabled"]:
        dirty = [k for k in FLEET_V9_DISABLED_ZERO_KEYS if fl[k]]
        if dirty:
            c.fail(f"{where}.fleet: disabled but non-zero {dirty}")
        return
    if fl["health_mode"] not in ("binary", "score"):
        c.fail(f"{where}.fleet.health_mode {fl['health_mode']!r} not "
               f"binary/score")
    if fl["score_ejections"] > fl["ejections"]:
        c.fail(f"{where}.fleet: score_ejections > ejections")
    if not (fl["incidents_recovered"] <= fl["incidents_detected"] <=
            fl["incidents_total"]):
        c.fail(f"{where}.fleet: incident funnel not monotone "
               f"(recovered <= detected <= total)")
    for mk, ck in (("mttd_ms_mean", "incidents_detected"),
                   ("mttr_ms_mean", "incidents_recovered")):
        if fl[mk] < 0:
            c.fail(f"{where}.fleet.{mk} negative")
        if fl[ck] == 0 and fl[mk] != 0:
            c.fail(f"{where}.fleet.{mk} non-zero with {ck} == 0")


def check_fleet_v10(c, fl, where):
    if not c.require(fl, FLEET_V10_KEYS, f"{where}.fleet"):
        return
    if not fl["enabled"]:
        dirty = [k for k in FLEET_V10_DISABLED_ZERO_KEYS if fl[k]]
        if dirty:
            c.fail(f"{where}.fleet: disabled but non-zero {dirty}")
        return
    # Trace accounting is a funnel: a trace completes at most once and
    # stitches/orphans/duplicates never outnumber what was seen.
    if fl["traces_completed"] > fl["traces_started"]:
        c.fail(f"{where}.fleet: traces_completed > traces_started")
    if fl["traces_stitched"] > fl["traces_started"]:
        c.fail(f"{where}.fleet: traces_stitched > traces_started")
    if fl["trace_orphans"] > fl["traces_completed"]:
        c.fail(f"{where}.fleet: trace_orphans > traces_completed")
    if fl["slo_first_fast_alert_ms"] < 0:
        c.fail(f"{where}.fleet.slo_first_fast_alert_ms negative")
    if fl["slo_fast_alerts"] == 0 and fl["slo_first_fast_alert_ms"] != 0:
        c.fail(f"{where}.fleet: slo_first_fast_alert_ms non-zero with "
               f"slo_fast_alerts == 0")
    if fl["slo_fast_alerts"] > 0 and fl["slo_first_fast_alert_ms"] <= 0:
        c.fail(f"{where}.fleet: slo_fast_alerts fired but "
               f"slo_first_fast_alert_ms is not positive")


def check_timeseries(c, row, where):
    ts = row.get("timeseries")
    if not isinstance(ts, dict):
        c.fail(f"{where}.timeseries missing or malformed")
        return
    if not c.require(ts, TIMESERIES_KEYS, f"{where}.timeseries"):
        return
    if not isinstance(ts["series"], list):
        c.fail(f"{where}.timeseries.series is not a list")
        return
    if not ts["enabled"] and ts["series"]:
        c.fail(f"{where}.timeseries: disabled but carries "
               f"{len(ts['series'])} series")
    if ts["enabled"] and ts["series"] and ts["sample_period"] <= 0:
        c.fail(f"{where}.timeseries: sampled series with non-positive "
               f"sample_period")
    for s, se in enumerate(ts["series"]):
        sw = f"{where}.timeseries.series[{s}]"
        if not c.require(se, SERIES_KEYS, sw):
            continue
        if not isinstance(se["name"], str) or not se["name"]:
            c.fail(f"{sw}: missing/empty name")
            continue
        if se["kind"] not in METRIC_KINDS:
            c.fail(f"{sw} ({se['name']}): unknown kind {se['kind']!r}")
        pts = se["points"]
        if not isinstance(pts, list):
            c.fail(f"{sw} ({se['name']}): points is not a list")
            continue
        if any(not isinstance(p, list) or len(p) != 2 for p in pts):
            c.fail(f"{sw} ({se['name']}): points are not [tick, value] "
                   f"pairs")
            continue
        ticks = [p[0] for p in pts]
        if any(b <= a for a, b in zip(ticks, ticks[1:])):
            c.fail(f"{sw} ({se['name']}): sample ticks not strictly "
                   f"monotone")


def check_fleet_trace(c, row, where):
    ft = row.get("fleet_trace")
    if not isinstance(ft, dict):
        c.fail(f"{where}.fleet_trace missing or malformed")
        return
    if not c.require(ft, FLEET_TRACE_KEYS, f"{where}.fleet_trace"):
        return
    if not isinstance(ft["hops"], list):
        c.fail(f"{where}.fleet_trace.hops is not a list")
        return
    if not ft["enabled"]:
        if ft["traces_completed"] or ft["stitched"] or ft["hops"]:
            c.fail(f"{where}.fleet_trace: disabled but carries data")
        return
    if not (ft["e2e_p50"] <= ft["e2e_p99"] <= ft["e2e_p999"]):
        c.fail(f"{where}.fleet_trace: e2e percentiles not monotone")
    hop_names = set()
    for h, hop in enumerate(ft["hops"]):
        hw = f"{where}.fleet_trace.hops[{h}]"
        if not c.require(hop, HOP_ROW_KEYS, hw):
            continue
        hop_names.add(hop["hop"])
        if not (hop["p50"] <= hop["p99"] <= hop["p999"] <= hop["max"]):
            c.fail(f"{hw} ({hop['hop']}): percentiles not monotone")
        if not 0.0 <= hop["share"] <= 1.0:
            c.fail(f"{hw} ({hop['hop']}): share outside [0, 1]")
    for q in ("dominant_p50", "dominant_p99", "dominant_p999"):
        name = ft[q]
        if not isinstance(name, str):
            c.fail(f"{where}.fleet_trace.{q} is not a string")
        elif ft["hops"] and name not in hop_names and name != "-":
            c.fail(f"{where}.fleet_trace.{q} {name!r} names no hop row")


def check_row_tail(c, row, where):
    for qname, samples in row["queue_timelines"].items():
        ticks = [s[0] for s in samples]
        if ticks != sorted(ticks):
            c.fail(f"{where}.queue_timelines[{qname}] ticks not "
                   f"monotonic")

    fp = row["fingerprint"]
    if not isinstance(fp, str) or not FINGERPRINT_RE.match(fp):
        c.fail(f"{where}.fingerprint {fp!r} is not a 0x + 16-hex-digit "
               f"string")
    inv = row["invariants"]
    if not c.require(inv, INVARIANT_KEYS, f"{where}.invariants"):
        return
    if not isinstance(inv["checks_run"], int) or inv["checks_run"] < 0:
        c.fail(f"{where}.invariants.checks_run malformed")
    if not isinstance(inv["violations"], int) or inv["violations"] < 0:
        c.fail(f"{where}.invariants.violations malformed")
    if not isinstance(inv["failed"], list) or any(
            not isinstance(n, str) for n in inv["failed"]):
        c.fail(f"{where}.invariants.failed malformed")
        return
    if (inv["violations"] == 0) != (len(inv["failed"]) == 0):
        c.fail(f"{where}.invariants: violations={inv['violations']} "
               f"but failed list has {len(inv['failed'])} entries")


def validate(path, quiet=False):
    c = Checker(path)
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        c.fail(f"unreadable: {e}")
        doc = None

    if doc is not None:
        version = doc.get("schema_version")
        if version not in KNOWN_SCHEMA_VERSIONS:
            c.fail(f"schema_version {version!r}, expected one of "
                   f"{KNOWN_SCHEMA_VERSIONS}")
        else:
            if not isinstance(doc.get("bench"), str) or not doc["bench"]:
                c.fail("missing/empty 'bench' name")
            rows = doc.get("rows")
            if not isinstance(rows, list) or not rows:
                c.fail("'rows' missing or empty")
                rows = []
            for i, row in enumerate(rows):
                where = f"rows[{i}]"
                if not c.require(row, ROW_KEYS, where):
                    continue
                structural = (
                    c.require(row["config"], CONFIG_KEYS,
                              f"{where}.config") &
                    c.require(row["metrics"], METRIC_KEYS,
                              f"{where}.metrics") &
                    c.require(row["phases"], PHASE_KEYS,
                              f"{where}.phases") &
                    c.require(row["trace"], TRACE_KEYS,
                              f"{where}.trace"))
                if not structural:
                    continue
                check_phases(c, row, where)
                for fs in row["folded_stacks"]:
                    if "stack" not in fs or "cycles" not in fs:
                        c.fail(f"{where}: malformed folded stack {fs!r}")
                check_lock_windows(c, row, where, version)
                if version >= 3:
                    check_faults(c, row, where)
                if version >= 4:
                    check_overload(c, row, where)
                if version >= 5:
                    check_latency_stages(c, row, where)
                if version >= 6:
                    check_conn(c, row, where)
                if version >= 7:
                    check_sim_core(c, row, where)
                if version >= 8:
                    check_fleet(c, row, where, version)
                if version >= 10:
                    check_timeseries(c, row, where)
                    check_fleet_trace(c, row, where)
                check_row_tail(c, row, where)

    for msg in c.errors:
        print(f"{path}: FAIL: {msg}")
    if c.ok() and not quiet:
        print(f"{path}: OK ({doc['bench']}, {len(doc['rows'])} rows, "
              f"schema v{doc['schema_version']})")
    return c.ok()


def main(argv):
    quiet = False
    paths = []
    for a in argv[1:]:
        if a == "--quiet":
            quiet = True
        elif a.startswith("-"):
            print(f"unknown option {a!r}")
            return 2
        else:
            paths.append(a)
    if not paths:
        print(__doc__.strip())
        return 2
    results = [validate(p, quiet) for p in paths]
    return 0 if all(results) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
