#!/usr/bin/env python3
"""Structurally validate a --perfetto trace-event JSON export.

Usage: validate_perfetto.py <trace.json> [...] [--require-flows]
                            [--forbid-flows]

Checks (stdlib only; CI runs this on every exported trace):
  - the document is valid JSON with a traceEvents list and otherData
  - duration events: per (pid, tid) track, B timestamps are monotonic
    non-decreasing and every E matches the name of the innermost open B
    (balanced nesting, no dangling opens)
  - async wait spans: per (cat, id, name), b/e strictly alternate and
    balance out
  - flow arrows: every flow id has exactly one s and one f, and the f
    does not precede its s in timestamp
  - otherData.cross_core_flows matches the counted s events, and when
    otherData.rfd is true the trace must contain no flow arrows at all
  - --require-flows additionally fails traces with zero flow arrows
    (used on the RSS row, where cross-core hops must be visible);
    --forbid-flows fails traces with any
Exit status 0 iff every trace passes.
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: FAIL: {msg}")
    return False


def validate(path, require_flows=False, forbid_flows=False):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "traceEvents missing or empty")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        return fail(path, "otherData missing")

    stacks = {}       # (pid, tid) -> [(name, ts), ...] open B events
    last_b_ts = {}    # (pid, tid) -> last B timestamp
    async_open = {}   # (cat, id, name) -> open depth
    flow_s = {}       # id -> ts of s
    flow_f = {}       # id -> ts of f
    n_b = n_e = n_async = 0

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        where = f"traceEvents[{i}]"
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            return fail(path, f"{where}: missing/bad ts")
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            n_b += 1
            if track in last_b_ts and ts < last_b_ts[track]:
                return fail(path, f"{where}: B ts {ts} precedes previous "
                                  f"B {last_b_ts[track]} on track {track}")
            last_b_ts[track] = ts
            stacks.setdefault(track, []).append((ev.get("name"), ts))
        elif ph == "E":
            n_e += 1
            stack = stacks.get(track)
            if not stack:
                return fail(path, f"{where}: E with no open B on track "
                                  f"{track}")
            name, b_ts = stack.pop()
            if ev.get("name") not in (None, name):
                return fail(path, f"{where}: E '{ev.get('name')}' closes "
                                  f"B '{name}'")
            if ts < b_ts:
                return fail(path, f"{where}: E ts {ts} precedes its B "
                                  f"{b_ts}")
        elif ph in ("b", "e"):
            n_async += 1
            key = (ev.get("cat"), ev.get("id"), ev.get("name"))
            depth = async_open.get(key, 0)
            if ph == "b":
                if depth != 0:
                    return fail(path, f"{where}: async b re-opens {key}")
                async_open[key] = 1
            else:
                if depth != 1:
                    return fail(path, f"{where}: async e without b {key}")
                async_open[key] = 0
        elif ph == "s":
            fid = ev.get("id")
            if fid in flow_s:
                return fail(path, f"{where}: duplicate flow s id {fid}")
            flow_s[fid] = ts
        elif ph == "f":
            fid = ev.get("id")
            if fid in flow_f:
                return fail(path, f"{where}: duplicate flow f id {fid}")
            flow_f[fid] = ts
        else:
            return fail(path, f"{where}: unknown ph {ph!r}")

    for track, stack in stacks.items():
        if stack:
            return fail(path, f"track {track}: {len(stack)} unclosed B "
                              f"events ({stack[-1][0]!r} last)")
    if n_b != n_e:
        return fail(path, f"{n_b} B events vs {n_e} E events")
    dangling = [k for k, d in async_open.items() if d]
    if dangling:
        return fail(path, f"{len(dangling)} unclosed async spans "
                          f"({dangling[0]})")
    if set(flow_s) != set(flow_f):
        only_s = set(flow_s) - set(flow_f)
        only_f = set(flow_f) - set(flow_s)
        return fail(path, f"unpaired flow ids: {len(only_s)} without f, "
                          f"{len(only_f)} without s")
    for fid, s_ts in flow_s.items():
        if flow_f[fid] < s_ts:
            return fail(path, f"flow {fid}: f ts {flow_f[fid]} precedes "
                              f"s ts {s_ts}")

    declared = other.get("cross_core_flows")
    if declared is not None and declared != len(flow_s):
        return fail(path, f"otherData.cross_core_flows={declared} but "
                          f"{len(flow_s)} s events counted")
    if other.get("rfd") and flow_s:
        return fail(path, f"rfd=true but {len(flow_s)} cross-core flow "
                          f"arrows present")
    if require_flows and not flow_s:
        return fail(path, "--require-flows: no flow arrows in trace")
    if forbid_flows and flow_s:
        return fail(path, f"--forbid-flows: {len(flow_s)} flow arrows "
                          f"present")

    print(f"{path}: OK ({n_b} slices, {n_async // 2} waits, "
          f"{len(flow_s)} flows, rfd={other.get('rfd')})")
    return True


def main(argv):
    require_flows = "--require-flows" in argv[1:]
    forbid_flows = "--forbid-flows" in argv[1:]
    paths = [a for a in argv[1:] if not a.startswith("--")]
    if not paths:
        print(__doc__.strip())
        return 2
    ok = all(validate(p, require_flows, forbid_flows) for p in paths)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
